//! The serving front-end: §7.3's multi-input-size deployment as a
//! first-class API.
//!
//! A [`Session`] wraps a [`Planner`] and a model *family* (a constructor
//! from input-size key to [`Model`], e.g. `|b| zoo::dlrm_mlp_top(b)`).
//! Requests arrive as activation matrices of any batch size; the session
//!
//! 1. dispatches the request to the nearest pre-declared batch bucket
//!    (padding the batch up with zero rows, as batching serving systems
//!    do),
//! 2. lazily builds — and caches, keyed by `(model, device, bucket)` —
//!    the intensity-guided [`ModelPlan`] and the functional
//!    [`ProtectedPipeline`] for that bucket (weights bound once: global
//!    ABFT's offline checksums are computed on the first request and
//!    reused forever),
//! 3. runs protected inference and returns the per-request
//!    [`InferenceReport`] with the padding cropped away, while
//!    aggregating serving statistics across requests.

use crate::pipeline::{InferenceReport, PipelineFault, ProtectedPipeline};
use crate::planner::Planner;
use crate::schemes::Scheme;
use crate::selector::ModelPlan;
use aiga_gpu::engine::Matrix;
use aiga_nn::Model;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Why a request could not be served.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionError {
    /// The request batch exceeds the largest declared bucket.
    BatchTooLarge {
        /// Observed request rows.
        observed: usize,
        /// Largest declared bucket.
        largest_bucket: u64,
    },
    /// The request feature width does not match the model family.
    FeatureMismatch {
        /// Observed request columns.
        observed: usize,
        /// Expected input features.
        expected: usize,
    },
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::BatchTooLarge {
                observed,
                largest_bucket,
            } => write!(
                f,
                "request batch {observed} exceeds the largest declared bucket \
                 {largest_bucket}; declare a larger bucket or split the request"
            ),
            SessionError::FeatureMismatch { observed, expected } => write!(
                f,
                "request has {observed} features but the model family expects {expected}"
            ),
        }
    }
}

impl std::error::Error for SessionError {}

/// Aggregate statistics over a session's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Requests served successfully.
    pub requests: u64,
    /// Requests answered from an already-built plan/pipeline.
    pub cache_hits: u64,
    /// Requests that triggered a plan + pipeline build (cache misses).
    pub plan_builds: u64,
    /// Requests on which at least one fault was detected.
    pub faulty_requests: u64,
    /// Total detection events across all requests.
    pub detections: u64,
}

/// The outcome of serving one request.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// The bucket the request was dispatched to.
    pub bucket: u64,
    /// Rows of the original request (the report is cropped back to it).
    pub rows: usize,
    /// Per-layer schemes that protected this request.
    pub schemes: Vec<Scheme>,
    /// The inference result (output is `rows × output_features`).
    pub report: InferenceReport,
}

struct BucketEntry {
    plan: ModelPlan,
    pipeline: ProtectedPipeline,
}

/// Builder for [`Session`]s.
pub struct SessionBuilder {
    planner: Planner,
    family_name: String,
    family: Box<dyn Fn(u64) -> Model + Send + Sync>,
    buckets: Vec<u64>,
    seed: u64,
}

impl SessionBuilder {
    /// Declares the batch buckets plans are built for (sorted and
    /// deduplicated). Defaults to `[1]`.
    pub fn buckets(mut self, buckets: impl IntoIterator<Item = u64>) -> Self {
        self.buckets = buckets.into_iter().collect();
        self.buckets.sort_unstable();
        self.buckets.dedup();
        assert!(!self.buckets.is_empty(), "at least one bucket required");
        assert!(self.buckets[0] >= 1, "buckets must be >= 1");
        self
    }

    /// Seed for the deterministic pipeline weights.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Finalizes the session.
    pub fn build(self) -> Session {
        Session {
            planner: self.planner,
            family_name: self.family_name,
            family: self.family,
            buckets: self.buckets,
            seed: self.seed,
            cache: Mutex::new(HashMap::new()),
            stats: Mutex::new(SessionStats::default()),
        }
    }
}

/// A long-lived serving session: plan once per bucket, serve many
/// requests.
pub struct Session {
    planner: Planner,
    family_name: String,
    family: Box<dyn Fn(u64) -> Model + Send + Sync>,
    buckets: Vec<u64>,
    seed: u64,
    cache: Mutex<HashMap<(String, String, u64), Arc<BucketEntry>>>,
    stats: Mutex<SessionStats>,
}

impl Session {
    /// Starts building a session for a model family. `family_name` keys
    /// the plan cache together with the device and bucket; `family` maps
    /// a batch-size key to the model served at that size.
    pub fn builder(
        planner: Planner,
        family_name: impl Into<String>,
        family: impl Fn(u64) -> Model + Send + Sync + 'static,
    ) -> SessionBuilder {
        SessionBuilder {
            planner,
            family_name: family_name.into(),
            family: Box::new(family),
            buckets: vec![1],
            seed: 0,
        }
    }

    /// The declared batch buckets, ascending.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// The bucket a request with `rows` rows dispatches to: the smallest
    /// declared bucket that fits it (requests are padded *up*).
    pub fn bucket_for(&self, rows: usize) -> Result<u64, SessionError> {
        self.buckets
            .iter()
            .copied()
            .find(|&b| b >= rows as u64)
            .ok_or(SessionError::BatchTooLarge {
                observed: rows,
                largest_bucket: *self.buckets.last().unwrap(),
            })
    }

    /// The intensity-guided plan serving a given bucket (builds and
    /// caches it if needed). Mostly useful for inspection and tests;
    /// does not touch the request-oriented [`SessionStats`] counters.
    pub fn plan_for_bucket(&self, bucket: u64) -> Arc<ModelPlan> {
        let (entry, _) = self.entry(bucket);
        Arc::new(entry.plan.clone())
    }

    /// Serves one request (rows ≤ some declared bucket, columns equal to
    /// the family's input features).
    pub fn serve(&self, input: &Matrix) -> Result<ServeReport, SessionError> {
        self.serve_with_fault(input, None)
    }

    /// Serves one request with an optional injected fault (the §2.3
    /// single-fault model, aimed at one layer of this request).
    pub fn serve_with_fault(
        &self,
        input: &Matrix,
        fault: Option<PipelineFault>,
    ) -> Result<ServeReport, SessionError> {
        let bucket = self.bucket_for(input.rows)?;
        let (entry, built) = self.entry(bucket);
        let expected = entry.pipeline.input_features();
        if input.cols != expected {
            return Err(SessionError::FeatureMismatch {
                observed: input.cols,
                expected,
            });
        }

        // Pad the batch up to the bucket with zero rows, run, crop back.
        let padded = if input.rows == bucket as usize {
            input.clone()
        } else {
            input.padded(bucket as usize, input.cols)
        };
        let mut report = entry.pipeline.infer(&padded, fault);
        let n_out = entry.pipeline.output_features();
        report.output.truncate(input.rows * n_out);

        let mut stats = self.stats.lock().unwrap();
        stats.requests += 1;
        if built {
            stats.plan_builds += 1;
        } else {
            stats.cache_hits += 1;
        }
        stats.detections += report.detections.len() as u64;
        if report.fault_detected() {
            stats.faulty_requests += 1;
        }
        drop(stats);

        Ok(ServeReport {
            bucket,
            rows: input.rows,
            schemes: entry.pipeline.schemes(),
            report,
        })
    }

    /// A snapshot of the aggregate serving statistics.
    pub fn stats(&self) -> SessionStats {
        *self.stats.lock().unwrap()
    }

    /// Fetches (building if needed) the bucket's plan + pipeline.
    /// Returns `(entry, built)` where `built` is true when this call
    /// won the build; stats accounting is the caller's concern so that
    /// inspection paths don't skew request counters.
    fn entry(&self, bucket: u64) -> (Arc<BucketEntry>, bool) {
        let key = (
            self.family_name.clone(),
            self.planner.device().name.to_string(),
            bucket,
        );
        // Fast path under the lock; build outside it so concurrent
        // requests for *different* buckets don't serialize on planning.
        if let Some(entry) = self.cache.lock().unwrap().get(&key) {
            return (entry.clone(), false);
        }
        let model = (self.family)(bucket);
        let plan = self.planner.plan(&model);
        let pipeline = ProtectedPipeline::with_registry(
            self.planner.scheme_registry(),
            &model,
            &plan.chosen_schemes(),
            self.seed,
        );
        let entry = Arc::new(BucketEntry { plan, pipeline });
        let mut cache = self.cache.lock().unwrap();
        let winner = cache.entry(key).or_insert_with(|| entry.clone()).clone();
        drop(cache);
        let built = Arc::ptr_eq(&winner, &entry);
        (winner, built)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiga_gpu::engine::{FaultKind, FaultPlan};
    use aiga_gpu::DeviceSpec;
    use aiga_nn::zoo;

    fn session() -> Session {
        Session::builder(
            Planner::new(DeviceSpec::t4()),
            "dlrm-mlp-bottom",
            zoo::dlrm_mlp_bottom,
        )
        .buckets([8, 32])
        .seed(7)
        .build()
    }

    #[test]
    fn requests_dispatch_to_the_smallest_fitting_bucket() {
        let s = session();
        assert_eq!(s.bucket_for(1).unwrap(), 8);
        assert_eq!(s.bucket_for(8).unwrap(), 8);
        assert_eq!(s.bucket_for(9).unwrap(), 32);
        assert_eq!(
            s.bucket_for(33),
            Err(SessionError::BatchTooLarge {
                observed: 33,
                largest_bucket: 32
            })
        );
    }

    #[test]
    fn serving_pads_and_crops_to_the_request_batch() {
        let s = session();
        let small = Matrix::random(3, 13, 100);
        let r = s.serve(&small).unwrap();
        assert_eq!(r.bucket, 8);
        assert_eq!(r.rows, 3);
        assert_eq!(r.report.output.len(), 3 * 64);
        assert!(!r.report.fault_detected());
        // The padded rows must not perturb the real rows: an exact-batch
        // request computes the identical leading outputs.
        let full = Matrix::random(8, 13, 100);
        let rf = s.serve(&full).unwrap();
        let shared = Matrix::from_fn(3, 13, |r, c| full.get(r, c));
        let rs = s.serve(&shared).unwrap();
        assert_eq!(rs.report.output[..], rf.report.output[..3 * 64]);
    }

    #[test]
    fn plans_are_cached_per_bucket() {
        let s = session();
        for _ in 0..3 {
            s.serve(&Matrix::random(5, 13, 1)).unwrap();
        }
        s.serve(&Matrix::random(20, 13, 2)).unwrap();
        let stats = s.stats();
        assert_eq!(stats.requests, 4);
        assert_eq!(stats.plan_builds, 2, "{stats:?}"); // one per touched bucket
        assert_eq!(stats.cache_hits, 2, "{stats:?}");
        assert_eq!(stats.faulty_requests, 0);
    }

    #[test]
    fn served_schemes_match_the_bucket_plan() {
        let s = session();
        let r = s.serve(&Matrix::random(8, 13, 3)).unwrap();
        let plan = s.plan_for_bucket(8);
        assert_eq!(r.schemes, plan.chosen_schemes());
    }

    #[test]
    fn plan_inspection_does_not_skew_request_stats() {
        let s = session();
        s.plan_for_bucket(8);
        s.plan_for_bucket(8);
        assert_eq!(s.stats(), SessionStats::default());
        // The first real request reuses the inspected entry: it is a
        // cache hit, and requests == plan_builds + cache_hits holds.
        s.serve(&Matrix::random(4, 13, 1)).unwrap();
        let stats = s.stats();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.plan_builds, 0);
    }

    #[test]
    fn faults_are_detected_and_counted() {
        let s = session();
        let fault = PipelineFault {
            layer: 1,
            fault: FaultPlan {
                row: 2,
                col: 50,
                after_step: 4,
                kind: FaultKind::AddValue(50.0),
            },
        };
        let r = s
            .serve_with_fault(&Matrix::random(8, 13, 4), Some(fault))
            .unwrap();
        assert!(r.report.fault_detected());
        let stats = s.stats();
        assert_eq!(stats.faulty_requests, 1);
        assert!(stats.detections >= 1);
    }

    #[test]
    fn feature_mismatch_is_rejected() {
        let s = session();
        let err = s.serve(&Matrix::random(4, 9, 5)).unwrap_err();
        assert_eq!(
            err,
            SessionError::FeatureMismatch {
                observed: 9,
                expected: 13
            }
        );
    }

    #[test]
    fn concurrent_requests_share_the_cache() {
        let s = std::sync::Arc::new(session());
        std::thread::scope(|scope| {
            for i in 0..4 {
                let s = s.clone();
                scope.spawn(move || {
                    s.serve(&Matrix::random(6, 13, 10 + i)).unwrap();
                });
            }
        });
        let stats = s.stats();
        assert_eq!(stats.requests, 4);
        assert!(stats.plan_builds >= 1 && stats.plan_builds <= 4);
    }
}
