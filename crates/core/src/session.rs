//! The serving front-end: §7.3's multi-input-size deployment as a
//! first-class API.
//!
//! A [`Session`] wraps a [`Planner`] and a model *family* — a
//! constructor from input-size key to an analytic [`Model`]
//! (`|b| zoo::dlrm_mlp_top(b)`, synthesized weights) or, via
//! [`Session::builder_network`], to an executable [`Network`]
//! (`|b| zoo::squeezenet_net(b, 64, 64, 7)`, real FP16 weights, conv
//! layers lowered to protected GEMMs). Requests arrive as activation
//! matrices of any batch size (flattened NCHW rows for networks); the
//! session
//!
//! 1. dispatches the request to the nearest pre-declared batch bucket
//!    (padding the batch up with zero rows, as batching serving systems
//!    do) — requests *larger* than the largest bucket are split into
//!    largest-bucket chunks, served chunk by chunk, and the cropped
//!    outputs concatenated;
//! 2. lazily compiles — and caches in a per-bucket slot — the
//!    [`CompiledModel`] for that bucket: the intensity-guided
//!    [`ModelPlan`] plus the bound executable stage graph (weights
//!    bound once: global ABFT's offline checksums are computed on the
//!    first request and reused forever);
//! 3. checks a warm [`Workspace`] out of the session pool, runs
//!    protected inference inside it, and returns the per-request
//!    [`InferenceReport`] with the padding cropped away.
//!
//! `Session` is deliberately the *single-caller* core of the serving
//! stack: one call, one protected pass, caller-threaded. Multi-client
//! traffic goes through [`crate::serve::Server`], which owns worker
//! threads and a dynamic batcher that coalesces concurrent requests
//! into these same buckets before calling [`Session::serve`].
//!
//! # Hot-path allocation discipline
//!
//! After each bucket's first request, `serve` is allocation-free on the
//! engine hot path: the bucket cache is a lock-free `OnceLock` slot per
//! declared bucket (no `String` keys, no map rehashing), statistics are
//! atomic counters (never contending with anything), and every scratch
//! buffer lives in a pooled [`Workspace`]. The only steady-state
//! allocation is the returned report's output vector —
//! `tests/alloc_steadystate.rs` pins this with a counting allocator.

use crate::adapt::{degrade_step, AdaptConfig, AdaptiveController};
use crate::compiled::CompiledModel;
use crate::pipeline::{InferenceReport, PipelineFault};
use crate::planner::Planner;
use crate::schemes::Scheme;
use crate::selector::ModelPlan;
use aiga_gpu::engine::{Matrix, Workspace};
use aiga_nn::{Model, Network};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// Why a request could not be served.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionError {
    /// The request feature width does not match the model family.
    FeatureMismatch {
        /// Observed request columns.
        observed: usize,
        /// Expected input features.
        expected: usize,
    },
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::FeatureMismatch { observed, expected } => write!(
                f,
                "request has {observed} features but the model family expects {expected}"
            ),
        }
    }
}

impl std::error::Error for SessionError {}

/// Aggregate statistics over a session's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Requests served successfully.
    pub requests: u64,
    /// Requests answered from an already-built plan/pipeline.
    pub cache_hits: u64,
    /// Requests that triggered a plan + pipeline build (cache misses).
    pub plan_builds: u64,
    /// Requests on which at least one fault was detected.
    pub faulty_requests: u64,
    /// Total detection events across all requests.
    pub detections: u64,
    /// Requests larger than the largest bucket, served by splitting.
    pub split_requests: u64,
    /// In-place corrections applied across all requests: a localized
    /// verdict whose implicated slice was recomputed mid-pass
    /// (recovery sessions only).
    pub corrections: u64,
    /// The subset of corrections resolved by replication majority vote
    /// rather than a checksum localizer.
    pub vote_resolutions: u64,
    /// Scheme switches (escalations + relaxations) committed by the
    /// adaptive controller (adaptive sessions only).
    pub adaptations: u64,
    /// Requests served under a *degraded* scheme assignment — every
    /// layer one rung down the [`crate::adapt::ladder`] from the static
    /// plan's choice (an overloaded [`crate::serve::Server`] trades
    /// protection strength for execution time; output bytes are
    /// unaffected).
    pub degraded_requests: u64,
}

/// Lock-free statistics counters; [`Session::stats`] snapshots them
/// into a plain [`SessionStats`]. Replaces the former stats mutex so
/// bookkeeping never contends with anything.
#[derive(Default)]
struct AtomicStats {
    requests: AtomicU64,
    cache_hits: AtomicU64,
    plan_builds: AtomicU64,
    faulty_requests: AtomicU64,
    detections: AtomicU64,
    split_requests: AtomicU64,
    corrections: AtomicU64,
    vote_resolutions: AtomicU64,
    adaptations: AtomicU64,
    degraded_requests: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> SessionStats {
        SessionStats {
            requests: self.requests.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            plan_builds: self.plan_builds.load(Ordering::Relaxed),
            faulty_requests: self.faulty_requests.load(Ordering::Relaxed),
            detections: self.detections.load(Ordering::Relaxed),
            split_requests: self.split_requests.load(Ordering::Relaxed),
            corrections: self.corrections.load(Ordering::Relaxed),
            vote_resolutions: self.vote_resolutions.load(Ordering::Relaxed),
            adaptations: self.adaptations.load(Ordering::Relaxed),
            degraded_requests: self.degraded_requests.load(Ordering::Relaxed),
        }
    }
}

/// The outcome of serving one request.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// The bucket the request was dispatched to (for split oversized
    /// requests: the largest bucket, which every chunk — tail included —
    /// was served through).
    pub bucket: u64,
    /// Rows of the original request (the report is cropped back to it).
    pub rows: usize,
    /// Per-layer schemes that protected this request. Shared with the
    /// session's bucket cache — cloning a report never reallocates it.
    pub schemes: Arc<[Scheme]>,
    /// The inference result (output is `rows × output_features`).
    pub report: InferenceReport,
}

/// How a session instantiates the model served at a batch-size key:
/// an analytic MLP family with synthesized weights, or an executable
/// network family compiled into protected stage graphs (conv models
/// from the zoo serve through exactly the same buckets and pool).
enum Family {
    Mlp(Box<dyn Fn(u64) -> Model + Send + Sync>),
    Network(Box<dyn Fn(u64) -> Network + Send + Sync>),
}

/// Adaptive-control state: one controller and one model overlay per
/// declared bucket. A controller spins up lazily against its bucket's
/// static plan on first serve; an overlay, when present, supersedes the
/// static entry until the controller relaxes back to baseline.
struct AdaptState {
    config: AdaptConfig,
    controllers: Vec<OnceLock<Mutex<AdaptiveController>>>,
    overlays: Vec<RwLock<Option<Arc<CompiledModel>>>>,
}

/// Builder for [`Session`]s.
pub struct SessionBuilder {
    planner: Planner,
    family_name: String,
    family: Family,
    buckets: Vec<u64>,
    seed: u64,
    recovery: bool,
    adaptive: Option<AdaptConfig>,
}

impl SessionBuilder {
    /// Declares the batch buckets plans are built for (sorted and
    /// deduplicated). Defaults to `[1]`.
    pub fn buckets(mut self, buckets: impl IntoIterator<Item = u64>) -> Self {
        self.buckets = buckets.into_iter().collect();
        self.buckets.sort_unstable();
        self.buckets.dedup();
        assert!(!self.buckets.is_empty(), "at least one bucket required");
        assert!(self.buckets[0] >= 1, "buckets must be >= 1");
        self
    }

    /// Seed for the deterministic *synthesized* pipeline weights of
    /// analytic MLP families ([`Session::builder`]). Executable network
    /// families ([`Session::builder_network`]) carry their own weights
    /// — seed them where the network is built (e.g. the seed argument
    /// of `zoo::squeezenet_net`); calling this on a network-family
    /// builder panics rather than silently doing nothing.
    pub fn seed(mut self, seed: u64) -> Self {
        assert!(
            matches!(self.family, Family::Mlp(_)),
            "seed() only applies to MLP families; network families carry \
             their own weights — seed them where the Network is built"
        );
        self.seed = seed;
        self
    }

    /// Enables fault *correction*: schemes that can localize a detected
    /// fault recompute only the implicated slice mid-pass, so the
    /// request completes with clean output and a
    /// [`crate::pipeline::LayerCorrection`] record instead of an
    /// unrepaired detection. Off by default (detect-only).
    pub fn recovery(mut self, on: bool) -> Self {
        self.recovery = on;
        self
    }

    /// Enables the online adaptive protection controller: per bucket
    /// and per layer, the observed fault rate over a sliding window
    /// escalates or relaxes the scheme around the static plan (see
    /// [`crate::adapt`]). Overrides any [`Planner::adaptive`] default.
    pub fn adaptive(mut self, config: AdaptConfig) -> Self {
        self.adaptive = Some(config);
        self
    }

    /// Finalizes the session.
    pub fn build(self) -> Session {
        let entries = self.buckets.iter().map(|_| OnceLock::new()).collect();
        let degraded = self.buckets.iter().map(|_| OnceLock::new()).collect();
        let adapt = self
            .adaptive
            .or(self.planner.adaptive_config())
            .map(|config| AdaptState {
                config,
                controllers: self.buckets.iter().map(|_| OnceLock::new()).collect(),
                overlays: self.buckets.iter().map(|_| RwLock::new(None)).collect(),
            });
        Session {
            cache: Arc::new(PlanCache {
                planner: self.planner,
                family_name: self.family_name,
                family: self.family,
                buckets: self.buckets,
                seed: self.seed,
                recovery: self.recovery,
                adapt,
                entries,
                degraded,
                stats: AtomicStats::default(),
            }),
            pool: Mutex::new(Vec::new()),
        }
    }
}

/// The shared, immutable planning state behind one or more [`Session`]
/// shards: the planner, the model family, the declared buckets, the
/// per-bucket compiled-model slots (base + degraded), the adaptive
/// overlays, and the aggregate statistics. Compilation happens exactly
/// once per bucket no matter how many shards serve from the cache.
///
/// `PlanCache` is deliberately opaque — it is reached through
/// [`Session::shard`], which hands each serving thread its own
/// workspace pool over the same `Arc<PlanCache>`.
pub struct PlanCache {
    planner: Planner,
    family_name: String,
    family: Family,
    buckets: Vec<u64>,
    seed: u64,
    recovery: bool,
    /// Adaptive-control state, present when the builder (or planner)
    /// requested it.
    adapt: Option<AdaptState>,
    /// One lazily-compiled model per declared bucket, aligned with
    /// `buckets`. `OnceLock` gives lock-free reads after the build and
    /// lets concurrent first requests for *different* buckets plan in
    /// parallel.
    entries: Vec<OnceLock<Arc<CompiledModel>>>,
    /// The *degraded* sibling of each bucket entry: the same model
    /// compiled with every layer one rung down the
    /// [`crate::adapt::ladder`] from the static plan's choice (floored
    /// at `Unprotected`). Built lazily on the first degraded pass; an
    /// overloaded [`crate::serve::Server`] serves through these to
    /// shed protection overhead — never output quality (all schemes
    /// compute byte-identical GEMM results).
    degraded: Vec<OnceLock<Arc<CompiledModel>>>,
    stats: AtomicStats,
}

/// A long-lived serving session: plan once per bucket, serve many
/// requests, each from a warm pooled workspace.
///
/// A session is a *shard view* over an [`Arc<PlanCache>`]: the compiled
/// plans, adaptive state, and statistics are shared (and built once),
/// while the workspace pool is private to the shard. [`Session::shard`]
/// creates another view — [`crate::serve::Server`] gives each worker
/// thread its own shard so steady-state serving never contends on one
/// pool mutex.
pub struct Session {
    cache: Arc<PlanCache>,
    /// Warm workspaces checked out per request. Capacity ratchets to
    /// the peak concurrency of *this shard*; a pop/push pair on the
    /// steady state does not allocate.
    pool: Mutex<Vec<Workspace>>,
}

impl PlanCache {
    fn bucket_index(&self, bucket: u64) -> usize {
        self.buckets
            .iter()
            .position(|&b| b == bucket)
            .expect("bucket not declared for this session")
    }

    /// Fetches (compiling if needed) the bucket's model. Returns
    /// `(entry, built)` where `built` is true when this call won the
    /// build. The steady-state path is one lock-free `OnceLock::get`;
    /// concurrent first requests may build concurrently, with one
    /// winner.
    fn entry(&self, index: usize) -> (Arc<CompiledModel>, bool) {
        let slot = &self.entries[index];
        if let Some(entry) = slot.get() {
            return (entry.clone(), false);
        }
        let bucket = self.buckets[index];
        let compiled = match &self.family {
            Family::Mlp(f) => CompiledModel::compile_mlp(&self.planner, &f(bucket), self.seed),
            Family::Network(f) => CompiledModel::compile(&self.planner, &f(bucket)),
        }
        .with_recovery(self.recovery);
        let built = slot.set(Arc::new(compiled)).is_ok();
        (slot.get().expect("just initialized").clone(), built)
    }

    /// The degraded sibling of a bucket entry: recompiled with every
    /// layer one [`crate::adapt::weaker`] rung down from the base
    /// plan's scheme. When the base plan is already fully unprotected
    /// there is nothing cheaper — the base entry is reused as-is.
    /// Degraded compiles are overload actions, not request cache
    /// misses: they never count as `plan_builds`.
    fn degraded_entry(&self, index: usize, base: &Arc<CompiledModel>) -> Arc<CompiledModel> {
        self.degraded[index]
            .get_or_init(|| match degrade_step(base.schemes()) {
                None => base.clone(),
                Some(schemes) => {
                    let bucket = self.buckets[index];
                    let compiled = match &self.family {
                        Family::Mlp(f) => CompiledModel::compile_mlp_overridden(
                            &self.planner,
                            &f(bucket),
                            self.seed,
                            &schemes,
                        ),
                        Family::Network(f) => {
                            CompiledModel::compile_overridden(&self.planner, &f(bucket), &schemes)
                        }
                    };
                    Arc::new(compiled.with_recovery(self.recovery))
                }
            })
            .clone()
    }

    /// Feeds one served report into a bucket's adaptive controller and,
    /// when it commits scheme switches, swaps the bucket's overlay model
    /// — recompiled under the controller's current schemes, or back to
    /// the static entry when fully relaxed. Overlay recompiles are
    /// controller actions, not request cache misses: they count as
    /// `adaptations`, never `plan_builds`.
    fn adapt_observe(
        &self,
        adapt: &AdaptState,
        index: usize,
        base: &Arc<CompiledModel>,
        report: &InferenceReport,
    ) {
        let ctrl = adapt.controllers[index].get_or_init(|| {
            Mutex::new(AdaptiveController::new(
                adapt.config,
                base.schemes().to_vec(),
            ))
        });
        let mut ctrl = ctrl.lock().unwrap();
        let mut switches = 0u64;
        for layer in 0..ctrl.layers() {
            let faulty = report.detections.iter().any(|d| d.layer == layer)
                || report.corrections.iter().any(|c| c.layer == layer);
            if ctrl.observe(layer, faulty).is_some() {
                switches += 1;
            }
        }
        if switches == 0 {
            return;
        }
        let overlay = if ctrl.current() == ctrl.baseline() {
            None // fully relaxed: the static entry serves again
        } else {
            let schemes = ctrl.current().to_vec();
            let bucket = self.buckets[index];
            let compiled = match &self.family {
                Family::Mlp(f) => CompiledModel::compile_mlp_overridden(
                    &self.planner,
                    &f(bucket),
                    self.seed,
                    &schemes,
                ),
                Family::Network(f) => {
                    CompiledModel::compile_overridden(&self.planner, &f(bucket), &schemes)
                }
            };
            Some(Arc::new(compiled.with_recovery(self.recovery)))
        };
        drop(ctrl);
        *adapt.overlays[index].write().unwrap() = overlay;
        self.stats
            .adaptations
            .fetch_add(switches, Ordering::Relaxed);
    }

    fn note_request(&self, report: &InferenceReport, built: bool, split: bool, degraded: bool) {
        let s = &self.stats;
        s.requests.fetch_add(1, Ordering::Relaxed);
        if built {
            s.plan_builds.fetch_add(1, Ordering::Relaxed);
        } else {
            s.cache_hits.fetch_add(1, Ordering::Relaxed);
        }
        s.detections
            .fetch_add(report.detections.len() as u64, Ordering::Relaxed);
        if report.fault_detected() {
            s.faulty_requests.fetch_add(1, Ordering::Relaxed);
        }
        if !report.corrections.is_empty() {
            s.corrections
                .fetch_add(report.corrections.len() as u64, Ordering::Relaxed);
            let votes = report.corrections.iter().filter(|c| c.vote).count() as u64;
            if votes > 0 {
                s.vote_resolutions.fetch_add(votes, Ordering::Relaxed);
            }
        }
        if split {
            s.split_requests.fetch_add(1, Ordering::Relaxed);
        }
        if degraded {
            s.degraded_requests.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl Session {
    /// Starts building a session for a model family. `family_name` names
    /// the session in diagnostics; `family` maps a batch-size key to the
    /// model served at that size.
    pub fn builder(
        planner: Planner,
        family_name: impl Into<String>,
        family: impl Fn(u64) -> Model + Send + Sync + 'static,
    ) -> SessionBuilder {
        SessionBuilder {
            planner,
            family_name: family_name.into(),
            family: Family::Mlp(Box::new(family)),
            buckets: vec![1],
            seed: 0,
            recovery: false,
            adaptive: None,
        }
    }

    /// [`Self::builder`] for an *executable* network family: `family`
    /// maps a batch-size key to an [`aiga_nn::Network`] (e.g.
    /// `|b| zoo::squeezenet_net(b, 64, 64, 7)`), and each bucket is
    /// compiled — planned on its real conv shapes, real FP16 weights
    /// bound per layer — on first use. Requests are flattened-NCHW
    /// rows (`C·H·W` features per image).
    pub fn builder_network(
        planner: Planner,
        family_name: impl Into<String>,
        family: impl Fn(u64) -> Network + Send + Sync + 'static,
    ) -> SessionBuilder {
        SessionBuilder {
            planner,
            family_name: family_name.into(),
            family: Family::Network(Box::new(family)),
            buckets: vec![1],
            seed: 0,
            recovery: false,
            adaptive: None,
        }
    }

    /// Another shard over the same [`PlanCache`]: shared compiled
    /// plans, shared adaptive state, shared statistics — but a private
    /// workspace pool, so two shards never contend on a pool mutex.
    /// Plan compilation still happens once across all shards.
    /// [`crate::serve::Server`] hands each worker thread its own shard.
    pub fn shard(&self) -> Session {
        Session {
            cache: Arc::clone(&self.cache),
            pool: Mutex::new(Vec::new()),
        }
    }

    /// The model-family name this session serves.
    pub fn family_name(&self) -> &str {
        &self.cache.family_name
    }

    /// The declared batch buckets, ascending.
    pub fn buckets(&self) -> &[u64] {
        &self.cache.buckets
    }

    /// The bucket a request with `rows` rows dispatches to: the smallest
    /// declared bucket that fits it (requests are padded *up*). Requests
    /// beyond the largest bucket return the largest — `serve` splits
    /// them into chunks of that size.
    pub fn bucket_for(&self, rows: usize) -> u64 {
        self.cache
            .buckets
            .iter()
            .copied()
            .find(|&b| b >= rows as u64)
            .unwrap_or(*self.cache.buckets.last().unwrap())
    }

    /// The intensity-guided plan serving a given declared bucket (builds
    /// and caches it if needed). Mostly useful for inspection and tests;
    /// does not touch the request-oriented [`SessionStats`] counters.
    /// Panics if `bucket` was not declared.
    pub fn plan_for_bucket(&self, bucket: u64) -> Arc<ModelPlan> {
        let (entry, _) = self.cache.entry(self.cache.bucket_index(bucket));
        Arc::new(entry.plan().clone())
    }

    /// The compiled model serving a given declared bucket (builds and
    /// caches it if needed). Panics if `bucket` was not declared.
    pub fn compiled_for_bucket(&self, bucket: u64) -> Arc<CompiledModel> {
        self.cache.entry(self.cache.bucket_index(bucket)).0
    }

    /// Serves one request (any number of rows, columns equal to the
    /// family's input features).
    pub fn serve(&self, input: &Matrix) -> Result<ServeReport, SessionError> {
        self.serve_inner(input, None, false)
    }

    /// Serves one request with an optional injected fault (the §2.3
    /// single-fault model, aimed at one layer of this request). For
    /// oversized requests that get split, the fault is injected into the
    /// first chunk only — the fault plan's coordinates address one
    /// bucket-shaped kernel launch.
    pub fn serve_with_fault(
        &self,
        input: &Matrix,
        fault: Option<PipelineFault>,
    ) -> Result<ServeReport, SessionError> {
        self.serve_inner(input, fault, false)
    }

    /// Serves one request under the *degraded* scheme assignment: every
    /// layer one rung down the [`crate::adapt::ladder`] from the static
    /// plan (floored at `Unprotected`). Output bytes are identical to
    /// [`Session::serve`] — every scheme computes the same GEMM result,
    /// checksums ride in separate accumulators — only detection
    /// coverage is reduced in exchange for a cheaper pass. An
    /// overloaded [`crate::serve::Server`] uses this to keep queue age
    /// bounded before it starts shedding.
    pub fn serve_degraded(&self, input: &Matrix) -> Result<ServeReport, SessionError> {
        self.serve_inner(input, None, true)
    }

    /// A snapshot of the aggregate serving statistics (shared across
    /// all shards of the same plan cache).
    pub fn stats(&self) -> SessionStats {
        self.cache.stats.snapshot()
    }

    fn serve_inner(
        &self,
        input: &Matrix,
        fault: Option<PipelineFault>,
        degraded: bool,
    ) -> Result<ServeReport, SessionError> {
        let largest = *self.cache.buckets.last().unwrap();
        if input.rows <= largest as usize {
            let (report, built) =
                self.serve_chunk(input, self.bucket_for(input.rows), fault, degraded)?;
            self.cache
                .note_request(&report.report, built, false, degraded);
            return Ok(report);
        }

        // Oversized request: split into largest-bucket chunks and serve
        // every chunk — the tail included — through the largest-bucket
        // pipeline, so the whole request runs under ONE model instance
        // and ONE scheme plan (a model family may vary with the batch
        // key). The split path allocates for the chunk copies and the
        // concatenation — in-bucket requests remain the allocation-free
        // steady state.
        let mut output = Vec::new();
        let mut detections = Vec::new();
        let mut corrections = Vec::new();
        let mut schemes = None;
        let mut any_built = false;
        let mut start = 0;
        while start < input.rows {
            let rows = (largest as usize).min(input.rows - start);
            let chunk = input.row_block(start, rows);
            let chunk_fault = if start == 0 { fault } else { None };
            let (r, built) = self.serve_chunk(&chunk, largest, chunk_fault, degraded)?;
            any_built |= built;
            if output.is_empty() {
                let n_out = r.report.output.len() / rows;
                output.reserve_exact(input.rows * n_out);
            }
            output.extend_from_slice(&r.report.output);
            detections.extend(r.report.detections);
            corrections.extend(r.report.corrections);
            if schemes.is_none() {
                schemes = Some(r.schemes);
            }
            start += rows;
        }
        let report = InferenceReport {
            output,
            detections,
            corrections,
        };
        self.cache.note_request(&report, any_built, true, degraded);
        Ok(ServeReport {
            bucket: largest,
            rows: input.rows,
            schemes: schemes.expect("at least one chunk served"),
            report,
        })
    }

    /// Serves one request through an explicit declared bucket (the
    /// request must fit it); returns the report plus whether this call
    /// built the bucket entry. Statistics are the caller's concern (the
    /// split path aggregates over chunks).
    fn serve_chunk(
        &self,
        input: &Matrix,
        bucket: u64,
        fault: Option<PipelineFault>,
        degraded: bool,
    ) -> Result<(ServeReport, bool), SessionError> {
        let cache = &*self.cache;
        let index = cache.bucket_index(bucket);
        let (base, built) = cache.entry(index);
        // A degraded pass serves the cheaper sibling entry; otherwise an
        // adaptive overlay (escalated or relaxed recompile) supersedes
        // the static entry while present.
        let entry = if degraded {
            cache.degraded_entry(index, &base)
        } else {
            match &cache.adapt {
                Some(adapt) => adapt.overlays[index]
                    .read()
                    .unwrap()
                    .clone()
                    .unwrap_or_else(|| base.clone()),
                None => base.clone(),
            }
        };
        let expected = entry.input_features();
        if input.cols != expected {
            return Err(SessionError::FeatureMismatch {
                observed: input.cols,
                expected,
            });
        }

        // Check a warm workspace out of the pool (or warm a new one up),
        // run the whole pipeline inside it, and return it.
        let mut ws = {
            let mut pool = self.pool.lock().unwrap();
            pool.pop().unwrap_or_default()
        };
        let report = entry.infer_into(input, fault, &mut ws);
        self.pool.lock().unwrap().push(ws);

        // Degraded passes run *below* the plan's coverage by design —
        // feeding them to the adaptive controller would make overload
        // look like a fault-rate signal, so only regular passes observe.
        if !degraded {
            if let Some(adapt) = &cache.adapt {
                cache.adapt_observe(adapt, index, &base, &report);
            }
        }

        Ok((
            ServeReport {
                bucket,
                rows: input.rows,
                schemes: entry.schemes().clone(),
                report,
            },
            built,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiga_gpu::engine::{FaultKind, FaultPlan};
    use aiga_gpu::DeviceSpec;
    use aiga_nn::zoo;

    fn session() -> Session {
        Session::builder(
            Planner::new(DeviceSpec::t4()),
            "dlrm-mlp-bottom",
            zoo::dlrm_mlp_bottom,
        )
        .buckets([8, 32])
        .seed(7)
        .build()
    }

    #[test]
    fn bf16_squeezenet_serves_byte_deterministically_within_tolerance() {
        use aiga_gpu::engine::Dtype;
        // Quantized serving end to end: a bf16-compiled SqueezeNet
        // behind the session's bucket/pad/pool machinery must be
        // byte-deterministic across repeat requests and track the
        // network's dtype-aware f64 reference.
        let s = Session::builder_network(Planner::new(DeviceSpec::t4()), "squeezenet-bf16", |b| {
            zoo::squeezenet_net(b, 32, 32, 7).with_dtype(Dtype::Bf16)
        })
        .buckets([2])
        .build();
        let input = Matrix::random_dtype(1, 3 * 32 * 32, 42, Dtype::Bf16);
        let r1 = s.serve(&input).unwrap();
        assert_eq!(r1.bucket, 2);
        assert_eq!(r1.rows, 1);
        assert!(!r1.report.fault_detected(), "{:?}", r1.report.detections);
        let r2 = s.serve(&input).unwrap();
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(&r1.report.output),
            bits(&r2.report.output),
            "bf16 serving must be byte-deterministic"
        );
        // Zoo families share weights across batch keys, so the batch-1
        // network's reference covers the padded bucket-2 serve.
        let net = zoo::squeezenet_net(1, 32, 32, 7).with_dtype(Dtype::Bf16);
        let want = net.reference_f64(&input);
        assert_eq!(r1.report.output.len(), want.len());
        for (i, (&got, &w)) in r1.report.output.iter().zip(&want).enumerate() {
            assert!(
                (got as f64 - w).abs() < 5e-2,
                "elem {i}: served {got} vs reference {w}"
            );
        }
    }

    #[test]
    fn requests_dispatch_to_the_smallest_fitting_bucket() {
        let s = session();
        assert_eq!(s.bucket_for(1), 8);
        assert_eq!(s.bucket_for(8), 8);
        assert_eq!(s.bucket_for(9), 32);
        // Oversized requests dispatch to the largest bucket (and are
        // split across it by `serve`).
        assert_eq!(s.bucket_for(33), 32);
        assert_eq!(s.family_name(), "dlrm-mlp-bottom");
    }

    #[test]
    fn serving_pads_and_crops_to_the_request_batch() {
        let s = session();
        let small = Matrix::random(3, 13, 100);
        let r = s.serve(&small).unwrap();
        assert_eq!(r.bucket, 8);
        assert_eq!(r.rows, 3);
        assert_eq!(r.report.output.len(), 3 * 64);
        assert!(!r.report.fault_detected());
        // The padded rows must not perturb the real rows: an exact-batch
        // request computes the identical leading outputs.
        let full = Matrix::random(8, 13, 100);
        let rf = s.serve(&full).unwrap();
        let shared = Matrix::from_fn(3, 13, |r, c| full.get(r, c));
        let rs = s.serve(&shared).unwrap();
        assert_eq!(rs.report.output[..], rf.report.output[..3 * 64]);
    }

    #[test]
    fn oversized_requests_are_split_into_largest_bucket_chunks() {
        let s = session();
        // 70 rows over a largest bucket of 32: chunks of 32 + 32 + 6.
        let big = Matrix::random(70, 13, 500);
        let r = s.serve(&big).unwrap();
        assert_eq!(r.bucket, 32);
        assert_eq!(r.rows, 70);
        assert_eq!(r.report.output.len(), 70 * 64);
        // Split outputs must equal serving each chunk independently
        // (the zoo family shares weights across batch keys, and per-row
        // results are bit-identical across paddings and tilings).
        for (start, rows) in [(0usize, 32usize), (32, 32), (64, 6)] {
            let chunk = big.row_block(start, rows);
            let rc = s.serve(&chunk).unwrap();
            assert_eq!(
                rc.report.output[..],
                r.report.output[start * 64..(start + rows) * 64],
                "chunk at {start}"
            );
        }
        let stats = s.stats();
        assert_eq!(stats.split_requests, 1);
        // The split request and the three chunk requests above.
        assert_eq!(stats.requests, 4);
    }

    #[test]
    fn split_requests_detect_faults_in_the_first_chunk() {
        let s = session();
        let fault = PipelineFault {
            layer: 1,
            fault: FaultPlan {
                row: 2,
                col: 50,
                after_step: 4,
                kind: FaultKind::AddValue(50.0),
            },
        };
        let r = s
            .serve_with_fault(&Matrix::random(40, 13, 501), Some(fault))
            .unwrap();
        assert_eq!(r.rows, 40);
        assert!(r.report.fault_detected());
        assert_eq!(s.stats().faulty_requests, 1);
    }

    #[test]
    fn plans_are_cached_per_bucket() {
        let s = session();
        for _ in 0..3 {
            s.serve(&Matrix::random(5, 13, 1)).unwrap();
        }
        s.serve(&Matrix::random(20, 13, 2)).unwrap();
        let stats = s.stats();
        assert_eq!(stats.requests, 4);
        assert_eq!(stats.plan_builds, 2, "{stats:?}"); // one per touched bucket
        assert_eq!(stats.cache_hits, 2, "{stats:?}");
        assert_eq!(stats.faulty_requests, 0);
    }

    #[test]
    fn served_schemes_match_the_bucket_plan() {
        let s = session();
        let r = s.serve(&Matrix::random(8, 13, 3)).unwrap();
        let plan = s.plan_for_bucket(8);
        assert_eq!(r.schemes[..], plan.chosen_schemes()[..]);
    }

    #[test]
    fn plan_inspection_does_not_skew_request_stats() {
        let s = session();
        s.plan_for_bucket(8);
        s.plan_for_bucket(8);
        assert_eq!(s.stats(), SessionStats::default());
        // The first real request reuses the inspected entry: it is a
        // cache hit, and requests == plan_builds + cache_hits holds.
        s.serve(&Matrix::random(4, 13, 1)).unwrap();
        let stats = s.stats();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.plan_builds, 0);
    }

    #[test]
    fn faults_are_detected_and_counted() {
        let s = session();
        let fault = PipelineFault {
            layer: 1,
            fault: FaultPlan {
                row: 2,
                col: 50,
                after_step: 4,
                kind: FaultKind::AddValue(50.0),
            },
        };
        let r = s
            .serve_with_fault(&Matrix::random(8, 13, 4), Some(fault))
            .unwrap();
        assert!(r.report.fault_detected());
        let stats = s.stats();
        assert_eq!(stats.faulty_requests, 1);
        assert!(stats.detections >= 1);
    }

    #[test]
    fn feature_mismatch_is_rejected() {
        let s = session();
        let err = s.serve(&Matrix::random(4, 9, 5)).unwrap_err();
        assert_eq!(
            err,
            SessionError::FeatureMismatch {
                observed: 9,
                expected: 13
            }
        );
        // Oversized requests validate features too (first chunk).
        let err = s.serve(&Matrix::random(40, 9, 6)).unwrap_err();
        assert!(matches!(err, SessionError::FeatureMismatch { .. }));
    }

    #[test]
    fn concurrent_requests_share_the_cache_and_pool() {
        let s = std::sync::Arc::new(session());
        std::thread::scope(|scope| {
            for i in 0..4 {
                let s = s.clone();
                scope.spawn(move || {
                    s.serve(&Matrix::random(6, 13, 10 + i)).unwrap();
                });
            }
        });
        let stats = s.stats();
        assert_eq!(stats.requests, 4);
        assert!(stats.plan_builds >= 1 && stats.plan_builds <= 4);
        assert_eq!(stats.plan_builds + stats.cache_hits, 4);
    }

    #[test]
    fn network_families_compile_and_serve_per_bucket() {
        let s = Session::builder_network(Planner::new(DeviceSpec::t4()), "resnet-block", |b| {
            zoo::resnet_block_net(b, 8, 8, 7)
        })
        .buckets([2, 4])
        .build();
        let features = 16 * 8 * 8;
        let r = s.serve(&Matrix::random(1, features, 50)).unwrap();
        assert_eq!(r.bucket, 2);
        assert_eq!(r.report.output.len(), 10);
        assert!(!r.report.fault_detected());
        // The compiled entry exposes the plan built on real conv shapes.
        let compiled = s.compiled_for_bucket(2);
        assert_eq!(compiled.plan().layers.len(), 5);
        assert_eq!(r.schemes[..], compiled.plan().chosen_schemes()[..]);
        // A second bucket compiles its own instance.
        let r4 = s.serve(&Matrix::random(3, features, 51)).unwrap();
        assert_eq!(r4.bucket, 4);
        assert_eq!(r4.report.output.len(), 3 * 10);
        assert_eq!(s.stats().plan_builds, 2);
    }

    #[test]
    #[should_panic(expected = "seed() only applies to MLP families")]
    fn seeding_a_network_family_is_rejected() {
        Session::builder_network(Planner::new(DeviceSpec::t4()), "resnet-block", |b| {
            zoo::resnet_block_net(b, 8, 8, 7)
        })
        .seed(42);
    }

    #[test]
    fn network_feature_mismatch_is_rejected() {
        let s = Session::builder_network(Planner::new(DeviceSpec::t4()), "resnet-block", |b| {
            zoo::resnet_block_net(b, 8, 8, 7)
        })
        .buckets([2])
        .build();
        let err = s.serve(&Matrix::random(1, 77, 52)).unwrap_err();
        assert_eq!(
            err,
            SessionError::FeatureMismatch {
                observed: 77,
                expected: 16 * 8 * 8
            }
        );
    }

    #[test]
    fn shards_share_the_plan_cache_but_not_the_pool() {
        let s = session();
        let shard = s.shard();
        s.serve(&Matrix::random(6, 13, 40)).unwrap();
        let req = Matrix::random(6, 13, 41);
        let a = s.serve(&req).unwrap();
        let b = shard.serve(&req).unwrap();
        assert_eq!(a.report.output, b.report.output);
        // One build total across both shards: stats are shared, and the
        // shard answered from the cache the parent built.
        let stats = s.stats();
        assert_eq!(stats, shard.stats());
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.plan_builds, 1);
        assert_eq!(stats.cache_hits, 2);
    }

    #[test]
    fn degraded_serves_weaken_every_layer_but_keep_the_bytes() {
        let s = session();
        let req = Matrix::random(8, 13, 60);
        let full = s.serve(&req).unwrap();
        let cheap = s.serve_degraded(&req).unwrap();
        // Byte-identical output: schemes change the checksums computed
        // alongside the GEMM, never the GEMM itself.
        assert_eq!(full.report.output, cheap.report.output);
        // Every layer sits one rung below the static plan (or on the
        // floor with it).
        use crate::adapt::weaker;
        for (f, c) in full.schemes.iter().zip(cheap.schemes.iter()) {
            assert_eq!(*c, weaker(*f).unwrap_or(*f), "{f:?} -> {c:?}");
        }
        assert!(full.schemes[..] != cheap.schemes[..]);
        let stats = s.stats();
        assert_eq!(stats.degraded_requests, 1);
        assert_eq!(stats.requests, 2);
        // The degraded compile is an overload action, not a cache miss.
        assert_eq!(stats.plan_builds, 1);
    }

    #[test]
    fn degraded_split_requests_stay_byte_identical_too() {
        let s = session();
        let big = Matrix::random(40, 13, 61);
        let full = s.serve(&big).unwrap();
        let cheap = s.serve_degraded(&big).unwrap();
        assert_eq!(full.report.output, cheap.report.output);
        assert_eq!(s.stats().degraded_requests, 1);
        assert_eq!(s.stats().split_requests, 2);
    }

    #[test]
    fn pooled_and_fresh_serves_are_byte_identical() {
        // The same request through a cold session and through a warm
        // one (workspace reused from earlier, different-shape requests)
        // must produce identical bytes.
        let warm = session();
        warm.serve(&Matrix::random(30, 13, 900)).unwrap();
        warm.serve(&Matrix::random(2, 13, 901)).unwrap();
        let cold = session();
        let req = Matrix::random(7, 13, 902);
        let a = cold.serve(&req).unwrap();
        let b = warm.serve(&req).unwrap();
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.report.output), bits(&b.report.output));
    }
}
