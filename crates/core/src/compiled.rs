//! The typed compilation path: `Model → ModelPlan → CompiledModel`.
//!
//! A [`CompiledModel`] is one executable, protected instance of a zoo
//! network: the analytic view ([`aiga_nn::Network::to_model`]) is
//! planned by a [`Planner`] — per-layer scheme selection now sees the
//! *real* conv shapes of the zoo, not synthetic ones — and the chosen
//! schemes are bound layer by layer into a
//! [`ProtectedPipeline`] stage graph (conv nodes lower through
//! workspace-threaded im2col; pooling/ReLU/concat/residual epilogues
//! execute between the protected GEMMs).
//!
//! `CompiledModel` is what a [`crate::session::Session`] caches per
//! batch bucket; it can also be used directly for single-caller
//! inference:
//!
//! ```
//! use aiga_core::{CompiledModel, Planner};
//! use aiga_gpu::engine::Matrix;
//! use aiga_gpu::DeviceSpec;
//! use aiga_nn::zoo;
//!
//! let net = zoo::resnet_block_net(2, 8, 8, 7);
//! let compiled = Planner::new(DeviceSpec::t4()).compile(&net);
//! assert_eq!(compiled.plan().layers.len(), 5);
//! let report = compiled.infer(&Matrix::random(2, 16 * 8 * 8, 1), None);
//! assert_eq!(report.output.len(), 2 * 10);
//! ```

use crate::pipeline::{InferenceReport, PipelineFault, ProtectedPipeline};
use crate::planner::Planner;
use crate::schemes::Scheme;
use crate::selector::ModelPlan;
use aiga_gpu::engine::{Matrix, Workspace};
use aiga_nn::{Model, Network};
use std::sync::Arc;

/// An executable network compiled against an intensity-guided plan.
pub struct CompiledModel {
    plan: ModelPlan,
    schemes: Arc<[Scheme]>,
    pipeline: ProtectedPipeline,
}

impl CompiledModel {
    /// Compiles an executable [`Network`]: plans its analytic model with
    /// `planner`, then binds each conv/fc node's real FP16 weights under
    /// the plan's chosen scheme.
    pub fn compile(planner: &Planner, net: &Network) -> Self {
        let model = net.to_model();
        // Plan at the network's storage dtype: a bf16/fp8 network's
        // layers sit at different arithmetic intensities than fp16's,
        // so scheme selection must see the dtype the executor runs.
        let plan = planner.clone().dtype(net.dtype).plan(&model);
        let schemes: Arc<[Scheme]> = plan.chosen_schemes().into();
        let pipeline =
            ProtectedPipeline::compile_with_registry(planner.scheme_registry(), net, &schemes);
        CompiledModel {
            plan,
            schemes,
            pipeline,
        }
    }

    /// Compiles an analytic MLP [`Model`] with synthesized weights (the
    /// chained fully-connected path `Session` serves for model families
    /// without executable graphs).
    pub fn compile_mlp(planner: &Planner, model: &Model, seed: u64) -> Self {
        let plan = planner.plan(model);
        let schemes: Arc<[Scheme]> = plan.chosen_schemes().into();
        let pipeline =
            ProtectedPipeline::with_registry(planner.scheme_registry(), model, &schemes, seed);
        CompiledModel {
            plan,
            schemes,
            pipeline,
        }
    }

    /// Like [`Self::compile`] but binding an explicit per-layer scheme
    /// list in place of the plan's choices — the adaptive controller's
    /// recompile path (the plan is kept, with its `chosen` fields
    /// overwritten, so cost introspection still works).
    pub fn compile_overridden(planner: &Planner, net: &Network, schemes: &[Scheme]) -> Self {
        let model = net.to_model();
        let mut plan = planner.clone().dtype(net.dtype).plan(&model);
        assert_eq!(
            plan.layers.len(),
            schemes.len(),
            "one override scheme per planned layer"
        );
        for (layer, &s) in plan.layers.iter_mut().zip(schemes) {
            layer.chosen = s;
        }
        let schemes: Arc<[Scheme]> = schemes.into();
        let pipeline =
            ProtectedPipeline::compile_with_registry(planner.scheme_registry(), net, &schemes);
        CompiledModel {
            plan,
            schemes,
            pipeline,
        }
    }

    /// Like [`Self::compile_mlp`] but binding an explicit per-layer
    /// scheme list in place of the plan's choices.
    pub fn compile_mlp_overridden(
        planner: &Planner,
        model: &Model,
        seed: u64,
        schemes: &[Scheme],
    ) -> Self {
        let mut plan = planner.plan(model);
        assert_eq!(
            plan.layers.len(),
            schemes.len(),
            "one override scheme per planned layer"
        );
        for (layer, &s) in plan.layers.iter_mut().zip(schemes) {
            layer.chosen = s;
        }
        let schemes: Arc<[Scheme]> = schemes.into();
        let pipeline =
            ProtectedPipeline::with_registry(planner.scheme_registry(), model, &schemes, seed);
        CompiledModel {
            plan,
            schemes,
            pipeline,
        }
    }

    /// Enables (or disables) in-pass correction on the underlying
    /// pipeline: localized verdicts recompute their implicated slice
    /// instead of merely flagging (see
    /// [`ProtectedPipeline::with_recovery`]).
    pub fn with_recovery(mut self, on: bool) -> Self {
        self.pipeline = self.pipeline.with_recovery(on);
        self
    }

    /// The intensity-guided plan this model was compiled against.
    pub fn plan(&self) -> &ModelPlan {
        &self.plan
    }

    /// Per-layer chosen schemes, shared (cloning never reallocates).
    pub fn schemes(&self) -> &Arc<[Scheme]> {
        &self.schemes
    }

    /// The underlying executable stage graph.
    pub fn pipeline(&self) -> &ProtectedPipeline {
        &self.pipeline
    }

    /// Batch size this instance executes at.
    pub fn batch(&self) -> usize {
        self.pipeline.batch()
    }

    /// Flattened input feature width of one request row.
    pub fn input_features(&self) -> usize {
        self.pipeline.input_features()
    }

    /// Flattened output feature width per request row.
    pub fn output_features(&self) -> usize {
        self.pipeline.output_features()
    }

    /// Protected inference in a throwaway workspace.
    pub fn infer(&self, input: &Matrix, fault: Option<PipelineFault>) -> InferenceReport {
        self.pipeline.infer(input, fault)
    }

    /// Protected inference inside a caller-owned workspace — the
    /// zero-allocation serving hot path.
    pub fn infer_into(
        &self,
        input: &Matrix,
        fault: Option<PipelineFault>,
        ws: &mut Workspace,
    ) -> InferenceReport {
        self.pipeline.infer_into(input, fault, ws)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiga_gpu::DeviceSpec;
    use aiga_nn::zoo;

    #[test]
    fn compile_plans_on_the_real_zoo_conv_shapes() {
        let net = zoo::resnet_block_net(2, 16, 16, 3);
        let compiled = CompiledModel::compile(&Planner::new(DeviceSpec::t4()), &net);
        let analytic = net.to_model();
        assert_eq!(compiled.plan().layers.len(), analytic.layers.len());
        for (pl, al) in compiled.plan().layers.iter().zip(&analytic.layers) {
            assert_eq!(pl.shape, al.shape.padded_to_mma(), "{}", al.name);
        }
        assert_eq!(compiled.schemes().len(), compiled.pipeline().depth());
        assert_eq!(
            compiled.pipeline().schemes()[..],
            compiled.schemes()[..],
            "bound schemes must match the plan"
        );
    }

    #[test]
    fn compiled_mlp_matches_the_session_legacy_path() {
        let model = zoo::dlrm_mlp_bottom(8);
        let planner = Planner::new(DeviceSpec::t4());
        let compiled = CompiledModel::compile_mlp(&planner, &model, 7);
        let direct = ProtectedPipeline::with_registry(
            planner.scheme_registry(),
            &model,
            &planner.plan(&model).chosen_schemes(),
            7,
        );
        let input = Matrix::random(8, 13, 5);
        let a = compiled.infer(&input, None);
        let b = direct.infer(&input, None);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.output), bits(&b.output));
    }
}
