//! Convenience API for protecting a single matrix multiplication.
//!
//! [`ProtectedGemm`] resolves its scheme through the
//! [`crate::registry::SchemeRegistry`] (the shared built-in one by
//! default), binds the weights once, and serves any number of runs —
//! there is no per-scheme dispatch here at all.

use crate::kernel::BoundKernel;
use crate::registry::{self, SchemeRegistry};
use crate::schemes::Scheme;
use aiga_gpu::engine::{FaultPlan, GemmEngine, Matrix, Workspace};
use aiga_gpu::GemmShape;

pub use crate::kernel::{RunReport, Verdict};

/// A matrix multiplication protected by one redundancy scheme.
pub struct ProtectedGemm {
    a: Matrix,
    engine: GemmEngine,
    bound: Box<dyn BoundKernel>,
    fault: Option<FaultPlan>,
}

impl ProtectedGemm {
    /// Protects `a · b` with `scheme`, resolved through the shared
    /// built-in registry.
    pub fn new(a: Matrix, b: Matrix, scheme: Scheme) -> Self {
        Self::with_registry(registry::shared(), a, b, scheme)
    }

    /// Protects `a · b` with `scheme` resolved through an explicit
    /// registry (custom or extended scheme sets).
    pub fn with_registry(registry: &SchemeRegistry, a: Matrix, b: Matrix, scheme: Scheme) -> Self {
        assert_eq!(a.cols, b.rows, "inner dimensions must agree");
        let shape = GemmShape::new(a.rows as u64, b.cols as u64, a.cols as u64);
        let engine = GemmEngine::with_default_tiling(shape);
        let bound = registry.resolve(scheme).bind(&b);
        ProtectedGemm {
            a,
            engine,
            bound,
            fault: None,
        }
    }

    /// Protects a deterministic random problem of the given shape
    /// (activation-scale values), convenient for demos and tests.
    pub fn random(shape: GemmShape, scheme: Scheme, seed: u64) -> Self {
        let a = Matrix::random(shape.m as usize, shape.k as usize, seed);
        let b = Matrix::random(shape.k as usize, shape.n as usize, seed.wrapping_add(1));
        Self::new(a, b, scheme)
    }

    /// Injects a fault into subsequent [`Self::run`] calls.
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = Some(fault);
        self
    }

    /// The scheme in use.
    pub fn scheme(&self) -> Scheme {
        self.bound.scheme()
    }

    /// Runs the protected GEMM and returns the verdict and output.
    pub fn run(&self) -> RunReport {
        // A stored fault is borrowed as a 0-or-1-element slice; no
        // per-call allocation.
        self.run_with(self.fault.as_slice())
    }

    /// Runs with an explicit fault list (ignoring any stored fault) —
    /// the entry point injection campaigns use, so one prepared GEMM can
    /// serve thousands of trials without re-binding.
    pub fn run_with(&self, faults: &[FaultPlan]) -> RunReport {
        self.bound.run(&self.engine, &self.a, faults)
    }

    /// Like [`Self::run_with`] but executing inside a caller-supplied
    /// workspace: the output stays in `ws` (read it via
    /// [`Workspace::output`]) and only the verdict is returned. A warm
    /// workspace makes repeated trials allocation-free — the
    /// fault-campaign hot path (one workspace per worker).
    pub fn run_into(&self, faults: &[FaultPlan], ws: &mut Workspace) -> Verdict {
        self.bound.run_into(&self.engine, &self.a, faults, ws)
    }

    /// Like [`Self::run_into`] but attempting localization + targeted
    /// recompute when the run flags a fault (see
    /// [`BoundKernel::run_corrected_into`]). On
    /// [`Verdict::Corrected`] the workspace output is byte-equal to a
    /// clean run; schemes that cannot localize return the plain
    /// `Detected` verdict with the output untouched.
    pub fn run_corrected_into(&self, faults: &[FaultPlan], ws: &mut Workspace) -> Verdict {
        self.bound
            .run_corrected_into(&self.engine, &self.a, faults, ws)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiga_gpu::engine::FaultKind;

    #[test]
    fn every_scheme_is_clean_on_fault_free_runs() {
        for scheme in Scheme::all_protected() {
            let g = ProtectedGemm::random(GemmShape::new(48, 40, 56), scheme, 99);
            assert!(g.run().verdict.is_clean(), "{scheme}");
        }
    }

    #[test]
    fn every_scheme_detects_a_large_fault() {
        let fault = FaultPlan {
            row: 3,
            col: 5,
            after_step: u64::MAX,
            kind: FaultKind::AddValue(1e3),
        };
        for scheme in Scheme::all_protected() {
            let g =
                ProtectedGemm::random(GemmShape::new(48, 40, 56), scheme, 123).with_fault(fault);
            assert!(g.run().verdict.is_detected(), "{scheme}");
        }
    }

    #[test]
    fn unprotected_never_detects() {
        let fault = FaultPlan {
            row: 0,
            col: 0,
            after_step: u64::MAX,
            kind: FaultKind::SetValue(f32::MAX),
        };
        let g = ProtectedGemm::random(GemmShape::new(16, 16, 16), Scheme::Unprotected, 7)
            .with_fault(fault);
        let r = g.run();
        assert!(r.verdict.is_clean());
        assert_eq!(r.output.get(0, 0), f32::MAX);
    }

    #[test]
    fn output_matches_unprotected_result() {
        let shape = GemmShape::new(32, 24, 40);
        let base = ProtectedGemm::random(shape, Scheme::Unprotected, 5).run();
        for scheme in Scheme::all_protected() {
            let r = ProtectedGemm::random(shape, scheme, 5).run();
            assert_eq!(r.output.c, base.output.c, "{scheme} changed the math");
        }
    }

    #[test]
    fn run_with_overrides_the_stored_fault() {
        let shape = GemmShape::new(32, 32, 32);
        let g =
            ProtectedGemm::random(shape, Scheme::ThreadLevelOneSided, 9).with_fault(FaultPlan {
                row: 1,
                col: 1,
                after_step: u64::MAX,
                kind: FaultKind::AddValue(1e3),
            });
        assert!(g.run().verdict.is_detected());
        assert!(g.run_with(&[]).verdict.is_clean());
    }

    #[test]
    fn run_into_matches_run_with_byte_for_byte() {
        let shape = GemmShape::new(33, 17, 29);
        let fault = FaultPlan {
            row: 2,
            col: 3,
            after_step: 1,
            kind: FaultKind::AddValue(1e3),
        };
        let mut ws = Workspace::new(); // one workspace across all schemes
        for scheme in Scheme::all_protected() {
            let g = ProtectedGemm::random(shape, scheme, 77);
            for faults in [&[][..], &[fault][..]] {
                let owned = g.run_with(faults);
                let verdict = g.run_into(faults, &mut ws);
                assert_eq!(owned.output.c, ws.output().c, "{scheme}");
                assert_eq!(
                    owned.verdict.is_detected(),
                    verdict.is_detected(),
                    "{scheme}"
                );
            }
        }
    }

    #[test]
    fn extension_schemes_work_through_the_same_api() {
        let g = ProtectedGemm::random(GemmShape::new(32, 32, 32), Scheme::MultiChecksum(2), 15);
        assert!(g.run().verdict.is_clean());
        assert_eq!(g.scheme(), Scheme::MultiChecksum(2));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_is_rejected() {
        let a = Matrix::zeros(4, 5);
        let b = Matrix::zeros(6, 4);
        ProtectedGemm::new(a, b, Scheme::GlobalAbft);
    }
}

/// A convolutional layer protected through its implicit-GEMM lowering —
/// the exact path the paper protects (§2.1): im2col the input, multiply
/// by the reshaped filters on the simulated Tensor Core kernel, check
/// with the chosen scheme.
pub struct ProtectedConv {
    gemm: ProtectedGemm,
    out_dims: (usize, usize),
    c_out: usize,
    batch: usize,
}

impl ProtectedConv {
    /// Lowers and protects one convolution.
    pub fn new(
        input: &aiga_nn::Tensor,
        filters: &aiga_nn::Tensor,
        params: aiga_nn::ConvParams,
        scheme: Scheme,
    ) -> Self {
        let a = aiga_nn::im2col(input, params);
        let b = aiga_nn::conv::filters_to_matrix(filters);
        let out_dims = params.out_dims(input.height, input.width);
        ProtectedConv {
            gemm: ProtectedGemm::new(a, b, scheme),
            out_dims,
            c_out: params.c_out,
            batch: input.batch,
        }
    }

    /// Injects a fault at output position `(n, c_out, oy, ox)`.
    pub fn with_fault_at(
        mut self,
        n: usize,
        c: usize,
        oy: usize,
        ox: usize,
        after_step: u64,
        kind: aiga_gpu::engine::FaultKind,
    ) -> Self {
        let (ho, wo) = self.out_dims;
        self.gemm = self.gemm.with_fault(FaultPlan {
            row: (n * ho + oy) * wo + ox,
            col: c,
            after_step,
            kind,
        });
        self
    }

    /// Output spatial dimensions.
    pub fn out_dims(&self) -> (usize, usize) {
        self.out_dims
    }

    /// Runs the protected convolution; the report's output is the GEMM
    /// view (`M × N` = `B·Ho·Wo × Cout`).
    pub fn run(&self) -> RunReport {
        self.gemm.run()
    }

    /// Reads one output activation from a report produced by [`Self::run`].
    pub fn output_at(&self, report: &RunReport, n: usize, c: usize, oy: usize, ox: usize) -> f32 {
        let (ho, wo) = self.out_dims;
        assert!(n < self.batch && c < self.c_out && oy < ho && ox < wo);
        report.output.get((n * ho + oy) * wo + ox, c)
    }
}

#[cfg(test)]
mod conv_tests {
    use super::*;
    use aiga_gpu::engine::FaultKind;
    use aiga_nn::{ConvParams, Tensor};

    fn setup() -> (Tensor, Tensor, ConvParams) {
        let input = Tensor::random(1, 3, 16, 16, 31);
        let filters = Tensor::random(8, 3, 3, 3, 32);
        let params = ConvParams {
            c_out: 8,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        (input, filters, params)
    }

    #[test]
    fn protected_conv_matches_direct_reference() {
        let (input, filters, params) = setup();
        let conv = ProtectedConv::new(&input, &filters, params, Scheme::ThreadLevelOneSided);
        let report = conv.run();
        assert!(report.verdict.is_clean());
        let direct = aiga_nn::conv::conv_reference_f64(&input, &filters, params);
        let (ho, wo) = conv.out_dims();
        for c in 0..8 {
            for oy in 0..ho {
                for ox in 0..wo {
                    let got = conv.output_at(&report, 0, c, oy, ox) as f64;
                    let want = direct[(c * ho + oy) * wo + ox];
                    assert!((got - want).abs() < 2e-2, "({c},{oy},{ox})");
                }
            }
        }
    }

    #[test]
    fn faults_in_feature_map_coordinates_are_detected() {
        let (input, filters, params) = setup();
        for scheme in [Scheme::GlobalAbft, Scheme::ThreadLevelOneSided] {
            let conv = ProtectedConv::new(&input, &filters, params, scheme).with_fault_at(
                0,
                5,
                9,
                12,
                3,
                FaultKind::AddValue(80.0),
            );
            assert!(conv.run().verdict.is_detected(), "{scheme}");
        }
    }
}
