//! Bit-exactness regression net for the engine's execution paths.
//!
//! The FNV-1a hashes below pin the engine's **canonical accumulation
//! order**: per output element, one FP32 accumulator updated by one
//! correctly-rounded FMA per K element, in K order
//! (`acc = a[kk].mul_add(b[kk], acc)`). Every execution path — the
//! AVX2+FMA microkernel, the scalar oracle, the hooked step-ordered
//! replay, sequential and block-parallel workspace runs — is required to
//! produce exactly this sequence per element, so any hash drift is a
//! real numerics regression, not tolerable noise. The hashes were
//! produced by the scalar reference walk; the SIMD sweep below proves
//! the microkernel reproduces them byte for byte.

use aiga_core::registry;
use aiga_core::schemes::Scheme;
use aiga_gpu::engine::simd;
use aiga_gpu::engine::{FaultKind, FaultPlan, Matrix};
use aiga_gpu::{GemmEngine, GemmPath, GemmShape};

fn fnv1a_of_c(c: &[f32]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for v in c {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

const ALL_SCHEMES: [Scheme; 6] = [
    Scheme::Unprotected,
    Scheme::GlobalAbft,
    Scheme::ThreadLevelOneSided,
    Scheme::ThreadLevelTwoSided,
    Scheme::ReplicationSingleAcc,
    Scheme::ReplicationTraditional,
];

/// (m, n, k, seed, clean hash, faulted hash) — one row per shape; every
/// scheme must hit the same hashes (schemes never change the math).
const GOLDEN: &[(usize, usize, usize, u64, u64, u64)] = &[
    (17, 9, 11, 1000, 0x8a50a5e47da48ca4, 0x86f3cef29ba2967d),
    (32, 32, 32, 1017, 0xc0ff88eed11fa61c, 0x582af8c42132cba5),
    (48, 40, 56, 1034, 0x059aff3647451f98, 0x92431c5d8a600cfe),
    (64, 64, 64, 1051, 0x26301469fa43be22, 0x9e6bd37730ee8074),
    (33, 65, 40, 1068, 0xda55a6ff30a49f7f, 0xe973d276aa8e6bc3),
];

fn mid_fault(m: usize, n: usize) -> FaultPlan {
    FaultPlan {
        row: (m - 1) / 2,
        col: (n - 1) / 2,
        after_step: 3,
        kind: FaultKind::AddValue(64.0),
    }
}

#[test]
fn every_scheme_reproduces_the_canonical_outputs() {
    let reg = registry::shared();
    for &(m, n, k, seed, clean_hash, dirty_hash) in GOLDEN {
        let a = Matrix::random(m, k, seed);
        let b = Matrix::random(k, n, seed + 1);
        let engine = GemmEngine::with_default_tiling(GemmShape::new(m as u64, n as u64, k as u64));
        let fault = mid_fault(m, n);
        for &scheme in &ALL_SCHEMES {
            let bound = reg.resolve(scheme).bind(&b);
            let clean = bound.run(&engine, &a, &[]);
            assert_eq!(
                fnv1a_of_c(&clean.output.c),
                clean_hash,
                "{scheme} clean output drifted on {m}x{n}x{k}"
            );
            let dirty = bound.run(&engine, &a, &[fault]);
            assert_eq!(
                fnv1a_of_c(&dirty.output.c),
                dirty_hash,
                "{scheme} faulted output drifted on {m}x{n}x{k}"
            );
        }
    }
}

#[test]
fn simd_and_scalar_paths_agree_byte_for_byte_across_all_schemes() {
    // The dispatcher's two paths must be indistinguishable: for every
    // scheme, every golden shape (odd/padded shapes included), clean and
    // mid-kernel-faulted, the AVX2+FMA microkernel must reproduce the
    // scalar oracle's bytes — outputs AND detection verdicts. All path
    // flipping happens inside this one test body so concurrent tests
    // (path-independent by this very guarantee) never observe a torn
    // override.
    if !simd::detect_path().is_simd() {
        eprintln!("host has no AVX2+FMA; scalar-only — sweep is vacuous here");
        return;
    }
    let reg = registry::shared();
    for &(m, n, k, seed, _, _) in GOLDEN {
        let a = Matrix::random(m, k, seed);
        let b = Matrix::random(k, n, seed + 1);
        let engine = GemmEngine::with_default_tiling(GemmShape::new(m as u64, n as u64, k as u64));
        let fault = mid_fault(m, n);
        for &scheme in &ALL_SCHEMES {
            let bound = reg.resolve(scheme).bind(&b);
            for faults in [&[][..], &[fault][..]] {
                simd::force_path(Some(GemmPath::Scalar));
                let s = bound.run(&engine, &a, faults);
                simd::force_path(Some(GemmPath::Avx2Fma));
                let v = bound.run(&engine, &a, faults);
                simd::force_path(None);
                let sb: Vec<u32> = s.output.c.iter().map(|x| x.to_bits()).collect();
                let vb: Vec<u32> = v.output.c.iter().map(|x| x.to_bits()).collect();
                assert_eq!(sb, vb, "{scheme} paths diverged on {m}x{n}x{k}");
                assert_eq!(
                    s.output.detections.len(),
                    v.output.detections.len(),
                    "{scheme} detection count diverged on {m}x{n}x{k}"
                );
            }
        }
    }
}

#[test]
fn fast_and_hooked_walks_are_byte_identical() {
    // The engine takes the fused per-accumulator fast path for schemes
    // without K-step hooks and the step-ordered replay otherwise; both
    // must produce identical bytes. Replication's hooked walk shares
    // loads with the engine, so comparing its output (hooked path)
    // against the unprotected output (fast path) covers the seam,
    // including with a mid-kernel fault.
    for &(m, n, k) in &[(48usize, 40usize, 64usize), (33, 65, 40)] {
        let a = Matrix::random(m, k, 7);
        let b = Matrix::random(k, n, 8);
        let engine = GemmEngine::with_default_tiling(GemmShape::new(m as u64, n as u64, k as u64));
        let reg = registry::shared();
        let fast = reg.resolve(Scheme::Unprotected).bind(&b);
        let hooked = reg.resolve(Scheme::ReplicationTraditional).bind(&b);
        for faults in [
            &[][..],
            &[FaultPlan {
                row: 1,
                col: 1,
                after_step: 5,
                kind: FaultKind::BitFlip(30),
            }][..],
        ] {
            let f = fast.run(&engine, &a, faults);
            let h = hooked.run(&engine, &a, faults);
            let fb: Vec<u32> = f.output.c.iter().map(|v| v.to_bits()).collect();
            let hb: Vec<u32> = h.output.c.iter().map(|v| v.to_bits()).collect();
            assert_eq!(fb, hb, "paths diverged on {m}x{n}x{k}");
        }
    }
}

/// (dtype, m, n, k, seed, clean hash, faulted hash) — the non-fp16
/// precision pins: one bf16 and one fp8 shape, hashed by the scalar
/// reference walk over dtype-decoded operands. One scheme per family
/// (thread-level, replication, global) must reproduce them, proving
/// the decoded-f32 panel currency keeps every family's math identical
/// across storage formats.
const GOLDEN_DTYPE: &[(aiga_gpu::engine::Dtype, usize, usize, usize, u64, u64, u64)] = &[
    (
        aiga_gpu::engine::Dtype::Bf16,
        48,
        40,
        56,
        1034,
        0xbfeb79d3dbe6b11a,
        0xe16798225d9fdb0e,
    ),
    (
        aiga_gpu::engine::Dtype::Fp8E4M3,
        32,
        32,
        32,
        1017,
        0x2da8c99718dfffac,
        0x29ac2c01261e00a5,
    ),
];

#[test]
fn every_scheme_family_reproduces_the_canonical_outputs_per_dtype() {
    const FAMILY_REPS: [Scheme; 4] = [
        Scheme::Unprotected,
        Scheme::ThreadLevelTwoSided,
        Scheme::ReplicationTraditional,
        Scheme::GlobalAbft,
    ];
    let reg = registry::shared();
    for &(dtype, m, n, k, seed, clean_hash, dirty_hash) in GOLDEN_DTYPE {
        let a = Matrix::random_dtype(m, k, seed, dtype);
        let b = Matrix::random_dtype(k, n, seed + 1, dtype);
        let engine = GemmEngine::with_default_tiling(GemmShape::new(m as u64, n as u64, k as u64));
        let fault = mid_fault(m, n);
        for &scheme in &FAMILY_REPS {
            let bound = reg.resolve(scheme).bind(&b);
            let clean = bound.run(&engine, &a, &[]);
            assert_eq!(
                fnv1a_of_c(&clean.output.c),
                clean_hash,
                "{scheme} clean {dtype} output drifted on {m}x{n}x{k}"
            );
            let dirty = bound.run(&engine, &a, &[fault]);
            assert_eq!(
                fnv1a_of_c(&dirty.output.c),
                dirty_hash,
                "{scheme} faulted {dtype} output drifted on {m}x{n}x{k}"
            );
        }
    }
}
