//! Bit-exactness regression net for the engine's fast paths.
//!
//! The FNV-1a hashes below were produced by the *pre-optimization*
//! engine (per-element F16 → f64 widening inside the K-loop, no
//! pre-decoded panels, step-ordered walk for every scheme) over a seeded
//! shape sweep, clean and faulted, for every built-in scheme. The
//! current engine — decode-table FP16, pre-decoded f32 panels, fused
//! per-accumulator fast path — must reproduce each output byte for byte:
//! FP16 products are exact in f32 and accumulator walks preserve their
//! per-element operation order, so any hash drift is a real numerics
//! regression, not tolerable noise.

use aiga_core::registry;
use aiga_core::schemes::Scheme;
use aiga_gpu::engine::{FaultKind, FaultPlan, Matrix};
use aiga_gpu::{GemmEngine, GemmShape};

fn fnv1a_of_c(c: &[f32]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for v in c {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// (m, n, k, seed, clean hash, faulted hash) — one row per shape; every
/// scheme must hit the same hashes (schemes never change the math).
const GOLDEN: &[(usize, usize, usize, u64, u64, u64)] = &[
    (17, 9, 11, 1000, 0x34dcdeb3fb09f1f4, 0x7efd38fedd899f1a),
    (32, 32, 32, 1017, 0x519f66b5fd97d29d, 0x77b6e58bf0997f1b),
    (48, 40, 56, 1034, 0x6e1f9cad9f993c99, 0x65228348b7de4d81),
    (64, 64, 64, 1051, 0x42973cbec7005836, 0x85eecb916cfe6f55),
    (33, 65, 40, 1068, 0x0f0581712e5ace0b, 0x3443b8e678f72093),
];

#[test]
fn every_scheme_reproduces_the_pre_optimization_outputs() {
    let schemes = [
        Scheme::Unprotected,
        Scheme::GlobalAbft,
        Scheme::ThreadLevelOneSided,
        Scheme::ThreadLevelTwoSided,
        Scheme::ReplicationSingleAcc,
        Scheme::ReplicationTraditional,
    ];
    let reg = registry::shared();
    for &(m, n, k, seed, clean_hash, dirty_hash) in GOLDEN {
        let a = Matrix::random(m, k, seed);
        let b = Matrix::random(k, n, seed + 1);
        let engine = GemmEngine::with_default_tiling(GemmShape::new(m as u64, n as u64, k as u64));
        let fault = FaultPlan {
            row: (m - 1) / 2,
            col: (n - 1) / 2,
            after_step: 3,
            kind: FaultKind::AddValue(64.0),
        };
        for &scheme in &schemes {
            let bound = reg.resolve(scheme).bind(&b);
            let clean = bound.run(&engine, &a, &[]);
            assert_eq!(
                fnv1a_of_c(&clean.output.c),
                clean_hash,
                "{scheme} clean output drifted on {m}x{n}x{k}"
            );
            let dirty = bound.run(&engine, &a, &[fault]);
            assert_eq!(
                fnv1a_of_c(&dirty.output.c),
                dirty_hash,
                "{scheme} faulted output drifted on {m}x{n}x{k}"
            );
        }
    }
}

#[test]
fn fast_and_hooked_walks_are_byte_identical() {
    // The engine takes the fused per-accumulator fast path for schemes
    // without K-step hooks and the step-ordered walk otherwise; both
    // must produce identical bytes. Replication's hooked walk shares
    // loads with the engine, so comparing its output (hooked path)
    // against the unprotected output (fast path) covers the seam,
    // including with a mid-kernel fault.
    for &(m, n, k) in &[(48usize, 40usize, 64usize), (33, 65, 40)] {
        let a = Matrix::random(m, k, 7);
        let b = Matrix::random(k, n, 8);
        let engine = GemmEngine::with_default_tiling(GemmShape::new(m as u64, n as u64, k as u64));
        let reg = registry::shared();
        let fast = reg.resolve(Scheme::Unprotected).bind(&b);
        let hooked = reg.resolve(Scheme::ReplicationTraditional).bind(&b);
        for faults in [
            &[][..],
            &[FaultPlan {
                row: 1,
                col: 1,
                after_step: 5,
                kind: FaultKind::BitFlip(30),
            }][..],
        ] {
            let f = fast.run(&engine, &a, faults);
            let h = hooked.run(&engine, &a, faults);
            let fb: Vec<u32> = f.output.c.iter().map(|v| v.to_bits()).collect();
            let hb: Vec<u32> = h.output.c.iter().map(|v| v.to_bits()).collect();
            assert_eq!(fb, hb, "paths diverged on {m}x{n}x{k}");
        }
    }
}
