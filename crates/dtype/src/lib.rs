//! Storage-precision substrate: the formats a model's operands live in.
//!
//! The engine computes every GEMM in one currency — decoded `f32`
//! panels, one FP32 accumulator per output element — but production
//! models are *stored* and *served* in more than one precision: fp16,
//! bf16, fp8 (E4M3), int8. This crate defines that storage axis as a
//! sealed [`StorageDtype`] trait with one implementation per format and
//! a runtime [`Dtype`] tag the rest of the stack dispatches on. Because
//! decode-to-f32 is **exact** for every float format here (each
//! representable value is also a binary32 value) and the int8 path uses
//! a power-of-two scale, all downstream f32 arithmetic — the AVX2
//! microkernel, checksum epilogues, recovery recompute — is shared
//! byte-for-byte across formats by construction.
//!
//! Per-format decode strategy (the hot direction):
//! - 16-bit formats ([`F16`], [`Bf16`]): a 65,536-entry const `f32`
//!   table — one indexed load per element. `F16` delegates to the
//!   existing `aiga-fp16` table so its hot path and golden hashes are
//!   untouched.
//! - [`Fp8E4M3`]: a 256-entry const table.
//! - [`Int8`]: affine scale (no table) — the engine's storage path
//!   fixes `scale = 2^-6`, `zero_point = 0`, so decoded values are
//!   exact multiples of 2^-6 and their f32 sums are exact.
//!
//! Encoding (quantization points: seeded weights, activation
//! write-back) is round-to-nearest-even via direct bit manipulation,
//! mirroring `aiga_fp16::f32_to_f16_bits`. Codes travel as `u16`
//! (8-bit formats use the low byte) so `Matrix` storage stays one flat
//! 16-bit lane regardless of format.
//!
//! Checksum chains keep their *hardware* precision per format (see
//! [`Dtype::chain_add`]): fp16 sums in fp16, bf16 in bf16, and fp8 —
//! which has no ALU add on real devices — widens exactly into fp16;
//! int8 chains model exact integer-widening adds. [`Dtype::chain_unit`]
//! exposes the matching unit roundoff for detection thresholds.

use aiga_fp16::half::f32_to_f16_bits;
use aiga_fp16::F16 as Half;

/// The engine's int8 dequantization scale, `2^-6`. A power of two keeps
/// every decoded value an exact multiple of the quantum, so f32 sums of
/// decoded int8 values are exact (the checksum chain has zero rounding
/// error). Range: ±127/64 ≈ ±1.984.
pub const INT8_SCALE: f32 = 1.0 / 64.0;

/// The bf16 decode table: one `f32` per 16-bit pattern (256 KiB of
/// rodata). bf16 is the top half of binary32, so each entry is just the
/// pattern shifted left 16 — the table exists so 16-bit formats share
/// one decode strategy (and one footprint line in the cost model).
static BF16_TO_F32: [f32; 1 << 16] = {
    let mut table = [0.0f32; 1 << 16];
    let mut bits = 0usize;
    while bits < (1 << 16) {
        table[bits] = f32::from_bits((bits as u32) << 16);
        bits += 1;
    }
    table
};

/// Decodes one FP8 E4M3FN code to the binary32 bit pattern of the same
/// value, in pure integer arithmetic (usable in const context).
///
/// E4M3FN (OCP spec): 1 sign, 4 exponent (bias 7), 3 mantissa bits; no
/// infinities; `S.1111.111` is NaN (canonicalized to `0x7fc0_0000` like
/// the fp16 decode path); max finite is `S.1111.110` = ±448; subnormal
/// value is `m · 2^-9`.
const fn fp8_e4m3_bits_to_f32_bits(code: u8) -> u32 {
    let sign = ((code & 0x80) as u32) << 24;
    let e = ((code >> 3) & 0x0f) as u32;
    let m = (code & 0x07) as u32;
    if e == 15 && m == 7 {
        return 0x7fc0_0000;
    }
    if e == 0 {
        if m == 0 {
            return sign; // signed zero
        }
        // Subnormal: value = m · 2^-9 with m in [1, 7]. Normalize: with
        // l the index of m's leading 1 (0..=2), biased f32 exponent is
        // (l - 9) + 127 = l + 118.
        let l = 31 - m.leading_zeros();
        return sign | ((l + 118) << 23) | ((m ^ (1 << l)) << (23 - l));
    }
    // Normal: (1 + m/8) · 2^(e-7); biased f32 exponent e - 7 + 127.
    sign | ((e + 120) << 23) | (m << 20)
}

/// The full FP8 E4M3 → f32 decode table (1 KiB of rodata).
static FP8_E4M3_TO_F32: [f32; 1 << 8] = {
    let mut table = [0.0f32; 1 << 8];
    let mut code = 0usize;
    while code < (1 << 8) {
        table[code] = f32::from_bits(fp8_e4m3_bits_to_f32_bits(code as u8));
        code += 1;
    }
    table
};

/// Rounds `sig >> shift` to nearest, ties to even (same contract as the
/// private helper in `aiga_fp16::half`).
#[inline]
fn rne_shift(sig: u64, shift: u32) -> u64 {
    if shift == 0 {
        return sig;
    }
    let shift = shift.min(63);
    let floor = sig >> shift;
    let rem = sig & ((1u64 << shift) - 1);
    let half = 1u64 << (shift - 1);
    if rem > half || (rem == half && floor & 1 == 1) {
        floor + 1
    } else {
        floor
    }
}

/// Converts an `f32` to bfloat16 bits with round-to-nearest-even.
///
/// bf16 is binary32 truncated to its top half, so RNE is one addition:
/// `bits + 0x7fff + (lsb of the kept half)`; mantissa overflow carries
/// into the exponent and on to infinity exactly as IEEE rounding
/// requires. NaNs canonicalize to the quiet `0x7fc0` (payload and sign
/// dropped, matching the fp16 path's canonicalization).
pub fn f32_to_bf16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    if (bits & 0x7fff_ffff) > 0x7f80_0000 {
        return 0x7fc0;
    }
    let rounded = bits + 0x7fff + ((bits >> 16) & 1);
    (rounded >> 16) as u16
}

/// Converts an `f32` to FP8 E4M3FN bits with round-to-nearest-even and
/// saturation: the format has no infinities, so overflow (and ±∞)
/// clamps to ±448 (`0x7e`/`0xfe`); NaN maps to the signed NaN code.
pub fn f32_to_fp8_e4m3_bits(x: f32) -> u8 {
    let b = x.to_bits();
    let sign = ((b >> 24) & 0x80) as u8;
    let abs = b & 0x7fff_ffff;
    if abs > 0x7f80_0000 {
        return sign | 0x7f; // NaN
    }
    let e = ((abs >> 23) & 0xff) as i32;
    let m = abs & 0x007f_ffff;
    if e == 0 && m == 0 {
        return sign; // signed zero
    }
    // Express |x| = sig · 2^exp with sig in [2^23, 2^24) for normals
    // (f32 subnormals are far below fp8's underflow threshold 2^-10 and
    // flush to signed zero through the subnormal path).
    let (sig, exp) = if e == 0 {
        (m, -126 - 23)
    } else {
        (m | (1u32 << 23), e - 127 - 23)
    };
    let emag = exp + 23;
    if emag >= 9 {
        // |x| >= 512 > 464, the rounding boundary above MAX = 448.
        return sign | 0x7e;
    }
    if emag >= -6 {
        // Normal candidate: sig's leading bit sits at position 23, so we
        // drop 20 bits; q in [2^3, 2^4] folds the implicit bit into the
        // exponent field. The NaN slot (0x7f) and beyond saturate.
        let q = rne_shift(sig as u64, 20);
        let bits = (((emag + 6) as u32) << 3) + q as u32;
        if bits >= 0x7f {
            return sign | 0x7e;
        }
        return sign | bits as u8;
    }
    // Subnormal or underflow-to-zero: quantum is 2^-9, so we keep
    // sig · 2^(exp+9) integral bits; q = 8 is MIN_POSITIVE normal and
    // encodes correctly as e=1, m=0.
    let shift = (-9 - exp) as u32;
    let q = rne_shift(sig as u64, shift);
    sign | q as u8
}

/// Affine int8 quantization with arbitrary `(scale, zero_point)`:
/// `q = clamp(round_ties_even(x / scale) + zero_point, -127, 127)`.
///
/// This is the general calibration-time mapping; the engine's *storage*
/// path fixes `scale = `[`INT8_SCALE`]` = 2^-6`, `zero_point = 0` (see
/// [`Int8`]) so that decoded sums stay exact in f32. Non-finite inputs
/// saturate (NaN quantizes to `zero_point`).
pub fn int8_affine_encode(x: f32, scale: f32, zero_point: i8) -> i8 {
    let q = (x / scale).round_ties_even() + zero_point as f32;
    if q.is_nan() {
        return zero_point;
    }
    q.clamp(-127.0, 127.0) as i8
}

/// Affine int8 dequantization: `x = (q - zero_point) · scale`.
pub fn int8_affine_decode(q: i8, scale: f32, zero_point: i8) -> f32 {
    (q as i32 - zero_point as i32) as f32 * scale
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for super::F16 {}
    impl Sealed for super::Bf16 {}
    impl Sealed for super::Fp8E4M3 {}
    impl Sealed for super::Int8 {}
}

/// One storage format: how a model's operand bytes map to the engine's
/// f32 currency. Sealed — the set of formats is closed over this crate
/// so the engine can dispatch on [`Dtype`] exhaustively.
///
/// Codes travel as `u16` regardless of width; 8-bit formats use the low
/// byte. `decode` is exact for every float format (all values are
/// binary32-representable) and for int8's power-of-two scale; `encode`
/// is round-to-nearest-even with each format's overflow semantics
/// (fp16/bf16 → ±∞, fp8 → saturate at ±448, int8 → clamp at ±127).
pub trait StorageDtype: sealed::Sealed + Copy + Send + Sync + 'static {
    /// The runtime tag for this format.
    const DTYPE: Dtype;
    /// Storage width in bits.
    const BITS: u32;
    /// Decodes one stored code to f32.
    fn decode(code: u16) -> f32;
    /// Encodes an f32 to the nearest representable code.
    fn encode(x: f32) -> u16;
}

/// IEEE 754 binary16 — the engine's native format, delegating to
/// `aiga-fp16`'s decode table and bit-level encoder so the fp16 hot
/// path (and its golden hashes) is byte-for-byte the pre-dtype code.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct F16;

impl StorageDtype for F16 {
    const DTYPE: Dtype = Dtype::F16;
    const BITS: u32 = 16;
    #[inline]
    fn decode(code: u16) -> f32 {
        Half::from_bits(code).to_f32()
    }
    #[inline]
    fn encode(x: f32) -> u16 {
        f32_to_f16_bits(x)
    }
}

/// bfloat16: 1 sign, 8 exponent (bias 127), 7 mantissa bits — binary32
/// truncated to its top half, so decode is exact by construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Bf16;

impl StorageDtype for Bf16 {
    const DTYPE: Dtype = Dtype::Bf16;
    const BITS: u32 = 16;
    #[inline]
    fn decode(code: u16) -> f32 {
        BF16_TO_F32[code as usize]
    }
    #[inline]
    fn encode(x: f32) -> u16 {
        f32_to_bf16_bits(x)
    }
}

/// FP8 E4M3FN (OCP): 1 sign, 4 exponent (bias 7), 3 mantissa bits; no
/// infinities, one NaN per sign, max finite ±448.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Fp8E4M3;

impl StorageDtype for Fp8E4M3 {
    const DTYPE: Dtype = Dtype::Fp8E4M3;
    const BITS: u32 = 8;
    #[inline]
    fn decode(code: u16) -> f32 {
        FP8_E4M3_TO_F32[(code & 0xff) as usize]
    }
    #[inline]
    fn encode(x: f32) -> u16 {
        f32_to_fp8_e4m3_bits(x) as u16
    }
}

/// Symmetric int8 storage: `value = code · 2^-6`, zero-point 0, codes
/// clamped to ±127 (the −128 slot is unused, keeping the range
/// symmetric as TensorRT-style symmetric quantization does).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Int8;

impl StorageDtype for Int8 {
    const DTYPE: Dtype = Dtype::Int8;
    const BITS: u32 = 8;
    #[inline]
    fn decode(code: u16) -> f32 {
        (code as u8 as i8) as f32 * INT8_SCALE
    }
    #[inline]
    fn encode(x: f32) -> u16 {
        int8_affine_encode(x, INT8_SCALE, 0) as u8 as u16
    }
}

/// Runtime storage-format tag. `Matrix`, panels, networks, the planner
/// and the fault campaign all carry one of these; the engine dispatches
/// decode/encode through it once per loop, not per element.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Dtype {
    /// IEEE binary16 (the default — the pre-dtype engine's format).
    #[default]
    F16,
    /// bfloat16.
    Bf16,
    /// FP8 E4M3FN.
    Fp8E4M3,
    /// Symmetric int8, scale `2^-6`.
    Int8,
}

impl Dtype {
    /// Every supported format, in display order.
    pub const ALL: [Dtype; 4] = [Dtype::F16, Dtype::Bf16, Dtype::Fp8E4M3, Dtype::Int8];

    /// Storage width in bits.
    pub const fn bits(self) -> u32 {
        match self {
            Dtype::F16 | Dtype::Bf16 => 16,
            Dtype::Fp8E4M3 | Dtype::Int8 => 8,
        }
    }

    /// Storage bytes per element — what DRAM-traffic and arithmetic-
    /// intensity models price.
    pub const fn bytes(self) -> u64 {
        (self.bits() / 8) as u64
    }

    /// Host-side decode-table footprint in bytes (0 for affine int8).
    pub const fn decode_table_bytes(self) -> u64 {
        match self {
            Dtype::F16 | Dtype::Bf16 => (1 << 16) * 4,
            Dtype::Fp8E4M3 => (1 << 8) * 4,
            Dtype::Int8 => 0,
        }
    }

    /// Decodes one stored code (low byte for 8-bit formats) to f32.
    #[inline]
    pub fn decode(self, code: u16) -> f32 {
        match self {
            Dtype::F16 => F16::decode(code),
            Dtype::Bf16 => Bf16::decode(code),
            Dtype::Fp8E4M3 => Fp8E4M3::decode(code),
            Dtype::Int8 => Int8::decode(code),
        }
    }

    /// Encodes an f32 to the nearest representable code (RNE).
    #[inline]
    pub fn encode(self, x: f32) -> u16 {
        match self {
            Dtype::F16 => F16::encode(x),
            Dtype::Bf16 => Bf16::encode(x),
            Dtype::Fp8E4M3 => Fp8E4M3::encode(x),
            Dtype::Int8 => Int8::encode(x),
        }
    }

    /// One step of a checksum chain at this format's *hardware* summing
    /// precision: the f32 running sum `acc` plus the decoded element `v`,
    /// rounded to the precision a real device's checksum accumulator
    /// would hold.
    ///
    /// - fp16 sums in fp16 (tensor-core-era half ALUs). Both summands
    ///   are always exact fp16 values, so the f32 add rounds the exact
    ///   sum to 24 bits and 24 ≥ 2·11+2: rounding its result to fp16
    ///   equals rounding the exact sum (innocuous double rounding) —
    ///   byte-identical to the f64-widened add `aiga-fp16` uses, one
    ///   rounding step cheaper.
    /// - bf16 sums in bf16 (bf16 ALUs exist on Ampere+). The f32 add is
    ///   correctly rounded to 24 bits and 24 ≥ 2·9+2, so rounding its
    ///   result to bf16 equals rounding the exact sum (innocuous double
    ///   rounding).
    /// - fp8 has **no** ALU add on real hardware; every E4M3 value is
    ///   exactly representable in fp16, so its chain widens into fp16.
    /// - int8 chains model exact integer-widening adds: with the
    ///   power-of-two scale every decoded value is a multiple of 2^-6,
    ///   so the plain f32 add is exact.
    #[inline]
    pub fn chain_add(self, acc: f32, v: f32) -> f32 {
        match self {
            Dtype::F16 | Dtype::Fp8E4M3 => Half::from_f32(acc + v).to_f32(),
            Dtype::Bf16 => Bf16::decode(Bf16::encode(acc + v)),
            Dtype::Int8 => acc + v,
        }
    }

    /// Unit roundoff of the chain precision used by [`Self::chain_add`]
    /// — the `u` detection thresholds multiply per rounding step. Zero
    /// for int8's exact chain.
    pub const fn chain_unit(self) -> f64 {
        match self {
            Dtype::F16 | Dtype::Fp8E4M3 => 1.0 / 2048.0, // 2^-11 (fp16 chain)
            Dtype::Bf16 => 1.0 / 512.0,                  // 2^-9
            Dtype::Int8 => 0.0,
        }
    }

    /// Kebab-case name (the `FromStr`/CLI/CI spelling).
    pub const fn name(self) -> &'static str {
        match self {
            Dtype::F16 => "f16",
            Dtype::Bf16 => "bf16",
            Dtype::Fp8E4M3 => "fp8e4m3",
            Dtype::Int8 => "int8",
        }
    }
}

impl std::fmt::Display for Dtype {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Dtype {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "f16" | "fp16" => Ok(Dtype::F16),
            "bf16" => Ok(Dtype::Bf16),
            "fp8e4m3" | "fp8" => Ok(Dtype::Fp8E4M3),
            "int8" => Ok(Dtype::Int8),
            _ => Err(format!(
                "unknown dtype {s:?} (expected f16|bf16|fp8e4m3|int8)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Independent bf16 reference: the top half of binary32, verbatim.
    fn bf16_ref_decode(bits: u16) -> f32 {
        f32::from_bits((bits as u32) << 16)
    }

    /// Independent fp8 E4M3FN reference in f64 field arithmetic.
    fn fp8_ref_decode(code: u8) -> f64 {
        let sign = if code & 0x80 != 0 { -1.0 } else { 1.0 };
        let e = (code >> 3) & 0x0f;
        let m = (code & 0x07) as f64;
        if e == 15 && (code & 0x07) == 7 {
            return f64::NAN;
        }
        if e == 0 {
            return sign * m * (2.0f64).powi(-9);
        }
        sign * (1.0 + m / 8.0) * (2.0f64).powi(e as i32 - 7)
    }

    #[test]
    fn bf16_decode_matches_reference_for_all_2e16_patterns() {
        for bits in 0..=u16::MAX {
            let got = Dtype::Bf16.decode(bits);
            let want = bf16_ref_decode(bits);
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "bf16 decode drift at {bits:#06x}"
            );
        }
    }

    #[test]
    fn bf16_encode_round_trips_all_2e16_patterns() {
        for bits in 0..=u16::MAX {
            let v = bf16_ref_decode(bits);
            let back = Dtype::Bf16.encode(v);
            if v.is_nan() {
                assert_eq!(back, 0x7fc0, "NaN canonicalization at {bits:#06x}");
            } else {
                assert_eq!(back, bits, "bf16 round trip at {bits:#06x}");
            }
        }
    }

    #[test]
    fn f16_decode_and_encode_round_trip_all_2e16_patterns() {
        // The dtype layer must be a transparent delegate: every pattern
        // decodes through aiga-fp16's table and encodes back to itself
        // (NaN payloads canonicalize to the quiet 0x7e00, like the F16
        // type itself).
        for bits in 0..=u16::MAX {
            let got = Dtype::F16.decode(bits);
            let want = Half::from_bits(bits).to_f32();
            assert_eq!(got.to_bits(), want.to_bits(), "f16 decode at {bits:#06x}");
            let back = Dtype::F16.encode(got);
            if want.is_nan() {
                assert_eq!(back, 0x7e00, "NaN canonicalization at {bits:#06x}");
            } else {
                assert_eq!(back, bits, "f16 round trip at {bits:#06x}");
            }
        }
    }

    #[test]
    fn f16_chain_add_single_rounding_matches_the_widened_reference() {
        // The fp16 chain arm adds in f32 and rounds once to fp16. The
        // reference is the f64-widened correctly-rounded add (53 ≥ 24
        // makes the f64 sum of two fp16 values exact, so its rounding
        // IS the exact-sum rounding). Both summands are always exact
        // fp16 values in a chain, so 24 ≥ 2·11+2 (innocuous double
        // rounding) says the two must agree bit for bit — sweep every
        // fp16 code for `v` against accumulators covering ties at
        // quantum boundaries, the 65504 overflow edge, subnormals,
        // zeros, and infinities.
        let acc_codes: Vec<u16> = [
            0x0000, 0x8000, // ±0
            0x0001, 0x0002, 0x03ff, 0x8001, 0x83ff, // subnormals
            0x0400, 0x0401, 0x8400, // smallest normals
            0x3c00, 0x3c01, 0xbc00, // ±1 and 1+ulp
            0x4248, 0xc248, // ±3.14…
            0x57ff, 0x5800, 0xd7ff, // 127.9375 / 128 (quantum step)
            0x7bff, 0xfbff, // ±65504 (overflow edge)
            0x7800, 0xf800, // ±32768
            0x7c00, 0xfc00, // ±inf
        ]
        .into_iter()
        .chain((0..256).map(|i| i * 257)) // stratified sweep
        .collect();
        for &ac in &acc_codes {
            let acc = Half::from_bits(ac).to_f32();
            if acc.is_nan() {
                continue;
            }
            for vb in 0..=u16::MAX {
                let v = Half::from_bits(vb).to_f32();
                if v.is_nan() {
                    continue;
                }
                let got = Dtype::F16.chain_add(acc, v);
                let want = Half::from_f64(acc as f64 + v as f64).to_f32();
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "fp16 chain drift: acc={ac:#06x} v={vb:#06x}"
                );
            }
        }
    }

    #[test]
    fn fp8_decode_matches_reference_for_all_256_codes() {
        for code in 0..=u8::MAX {
            let got = Dtype::Fp8E4M3.decode(code as u16) as f64;
            let want = fp8_ref_decode(code);
            if want.is_nan() {
                assert!(got.is_nan(), "fp8 NaN at {code:#04x}");
                continue;
            }
            assert_eq!(got, want, "fp8 decode drift at {code:#04x}");
            // Exact sign preservation (−0.0 included).
            assert_eq!(
                got.is_sign_negative(),
                want.is_sign_negative(),
                "fp8 sign at {code:#04x}"
            );
        }
    }

    #[test]
    fn fp8_encode_round_trips_all_256_codes() {
        for code in 0..=u8::MAX {
            let v = Dtype::Fp8E4M3.decode(code as u16);
            let back = Dtype::Fp8E4M3.encode(v) as u8;
            if v.is_nan() {
                // Decode canonicalizes NaN sign away, so both NaN codes
                // come back as the positive NaN code.
                assert_eq!(back, 0x7f, "fp8 NaN at {code:#04x}");
            } else {
                assert_eq!(back, code, "fp8 round trip at {code:#04x}");
            }
        }
    }

    #[test]
    fn fp8_encode_rounds_to_nearest_even_at_midpoints() {
        // Between consecutive positive finite codes the midpoint must
        // round to the code with the even mantissa bit.
        for code in 0..0x7eu8 {
            let lo = Dtype::Fp8E4M3.decode(code as u16) as f64;
            let hi = Dtype::Fp8E4M3.decode((code + 1) as u16) as f64;
            let mid = (lo + hi) / 2.0;
            let got = Dtype::Fp8E4M3.encode(mid as f32) as u8;
            let want = if code & 1 == 0 { code } else { code + 1 };
            assert_eq!(got, want, "midpoint of {code:#04x} and next");
        }
    }

    #[test]
    fn fp8_saturates_instead_of_overflowing() {
        // No infinities in E4M3FN: overflow and ±∞ clamp to ±448.
        assert_eq!(Dtype::Fp8E4M3.encode(448.0), 0x7e);
        assert_eq!(Dtype::Fp8E4M3.encode(463.9), 0x7e); // below boundary 464
        assert_eq!(Dtype::Fp8E4M3.encode(464.0), 0x7e); // tie → even → MAX
        assert_eq!(Dtype::Fp8E4M3.encode(1e9), 0x7e);
        assert_eq!(Dtype::Fp8E4M3.encode(f32::INFINITY), 0x7e);
        assert_eq!(Dtype::Fp8E4M3.encode(-1e9), 0xfe);
        assert_eq!(Dtype::Fp8E4M3.encode(f32::NEG_INFINITY), 0xfe);
        assert_eq!(Dtype::Fp8E4M3.encode(f32::NAN) as u8 & 0x7f, 0x7f);
        // Underflow: below half the smallest subnormal (2^-10) → zero.
        assert_eq!(Dtype::Fp8E4M3.encode(0.0004), 0x00);
        assert_eq!(Dtype::Fp8E4M3.encode(-0.0004), 0x80);
        // Just above it rounds up to the smallest subnormal 2^-9.
        assert_eq!(
            Dtype::Fp8E4M3.decode(Dtype::Fp8E4M3.encode(0.0011)),
            1.0 / 512.0
        );
    }

    #[test]
    fn int8_engine_codes_round_trip_and_sum_exactly() {
        // Every storage code decodes to i·2^-6 and encodes back; the
        // running f32 sum of all decoded values is exact (chain_unit 0).
        let mut sum = 0.0f32;
        let mut exact = 0i64;
        for i in -127i32..=127 {
            let code = (i as i8 as u8) as u16;
            let v = Dtype::Int8.decode(code);
            assert_eq!(v, i as f32 / 64.0, "int8 decode at {i}");
            assert_eq!(Dtype::Int8.encode(v), code, "int8 round trip at {i}");
            sum = Dtype::Int8.chain_add(sum, v);
            exact += i as i64;
        }
        assert_eq!(sum as f64 * 64.0, exact as f64);
    }

    #[test]
    fn int8_affine_edge_cases() {
        // Saturation at both rails, engine params.
        assert_eq!(int8_affine_encode(10.0, INT8_SCALE, 0), 127);
        assert_eq!(int8_affine_encode(-10.0, INT8_SCALE, 0), -127);
        assert_eq!(int8_affine_encode(f32::INFINITY, INT8_SCALE, 0), 127);
        assert_eq!(int8_affine_encode(f32::NEG_INFINITY, INT8_SCALE, 0), -127);
        assert_eq!(int8_affine_encode(f32::NAN, INT8_SCALE, 0), 0);
        // Ties to even on the integer grid: 0.5 quanta rounds to even.
        assert_eq!(int8_affine_encode(1.5, 1.0, 0), 2);
        assert_eq!(int8_affine_encode(2.5, 1.0, 0), 2);
        assert_eq!(int8_affine_encode(-1.5, 1.0, 0), -2);
        // Nonzero zero-point shifts the representable window.
        let (scale, zp) = (0.05f32, 10i8);
        assert_eq!(int8_affine_encode(0.0, scale, zp), 10);
        assert_eq!(int8_affine_decode(10, scale, zp), 0.0);
        let q = int8_affine_encode(1.0, scale, zp); // 1/0.05 + 10 = 30
        assert_eq!(q, 30);
        assert!((int8_affine_decode(q, scale, zp) - 1.0).abs() < 1e-6);
        // Asymmetric saturation with a shifted zero-point.
        assert_eq!(int8_affine_encode(100.0, scale, zp), 127);
        assert_eq!(int8_affine_encode(-100.0, scale, zp), -127);
        // Full sweep with arbitrary affine params: decode→encode is the
        // identity on the valid code range.
        for q in -127i8..=127 {
            let v = int8_affine_decode(q, scale, zp);
            assert_eq!(int8_affine_encode(v, scale, zp), q, "affine sweep at {q}");
        }
    }

    #[test]
    fn chain_add_matches_native_f16_chain() {
        // The fp16 chain must be byte-identical to the pre-dtype
        // `F16 + F16` fold the thread-level schemes used.
        let vals = [0.5f32, -1.25, 3.75, 0.099976, -2.5, 1.0 / 3.0];
        let mut acc = 0.0f32;
        let mut native = Half::ZERO;
        for &v in &vals {
            let h = Half::from_f32(v);
            acc = Dtype::F16.chain_add(acc, h.to_f32());
            native = native + h;
        }
        assert_eq!(acc.to_bits(), native.to_f32().to_bits());
    }

    #[test]
    fn chain_add_rounds_to_the_chain_format() {
        // bf16: 256 + 1 is not representable (9-bit significand needed).
        assert_eq!(Dtype::Bf16.chain_add(256.0, 1.0), 256.0);
        assert_eq!(Dtype::Bf16.chain_add(256.0, 3.0), 260.0); // RNE up
                                                              // fp8 chains in f16, NOT fp8: 32 + 1 survives (it would be lost
                                                              // in a 4-bit-significand fp8 accumulator).
        assert_eq!(Dtype::Fp8E4M3.chain_add(32.0, 1.0), 33.0);
        // f16: 2048 + 1 is the first loss.
        assert_eq!(Dtype::F16.chain_add(2048.0, 1.0), 2048.0);
        // int8 is exact.
        assert_eq!(Dtype::Int8.chain_add(1.984375, 0.015625), 2.0);
    }

    #[test]
    fn dtype_metadata_and_parsing() {
        assert_eq!(Dtype::default(), Dtype::F16);
        for d in Dtype::ALL {
            assert_eq!(d.name().parse::<Dtype>().unwrap(), d);
            assert_eq!(d.bytes() * 8, d.bits() as u64);
        }
        assert_eq!("fp16".parse::<Dtype>().unwrap(), Dtype::F16);
        assert_eq!("fp8".parse::<Dtype>().unwrap(), Dtype::Fp8E4M3);
        assert!("fp64".parse::<Dtype>().is_err());
        assert_eq!(Dtype::F16.decode_table_bytes(), 256 * 1024);
        assert_eq!(Dtype::Fp8E4M3.decode_table_bytes(), 1024);
        assert_eq!(Dtype::Int8.decode_table_bytes(), 0);
        assert_eq!(format!("{}", Dtype::Bf16), "bf16");
    }
}
