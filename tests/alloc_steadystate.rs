//! Counting-allocator regression net for the zero-allocation execution
//! path.
//!
//! A custom `#[global_allocator]` counts every `alloc`/`realloc` in the
//! process. This file holds exactly one `#[test]` so nothing else races
//! the counter, and every measured section runs single-threaded (the
//! workspace path executes blocks sequentially on the calling thread).
//!
//! Pinned guarantees, after warmup:
//!
//! 1. the engine hot path (`BoundKernel::run_into` through a warm
//!    `Workspace`) performs **exactly zero** heap allocations, for the
//!    fused fast path, global ABFT's verified path, and the hooked
//!    thread-level schemes;
//! 2. steady-state `Session::serve` allocates only the returned
//!    report's output vector — a small constant, identical from
//!    request to request, independent of model depth or GEMM size;
//!
//! 3. the *conv* engine path — `im2col_into` lowering into the
//!    workspace plus the protected GEMM — performs exactly zero heap
//!    allocations once warm, and steady-state compiled-model serving
//!    (conv stages, pooling/concat/residual epilogues, value slots)
//!    stays at the same small report-only constant;
//!
//! 4. problems large enough for `run_multi_into`'s block-parallel
//!    regime (≥ `BLOCK_PAR_MIN_FLOPS` across ≥ 2 block-row stripes)
//!    have a *stable* per-run allocation count once warm: the stripe
//!    scratch pool ratchets exactly once, leaving only the constant
//!    `thread::scope` spawn overhead (zero on single-core runners,
//!    where `effective_workers` keeps even large shapes sequential).
//!    Every shape in sections 1–3 sits below the threshold, so the
//!    exact-zero pins above are in the sequential regime by
//!    construction, on any runner;
//!
//! 5. the *fused* k>1 conv path — the GEMM reading an
//!    `MatrixLayout::Im2col` view of the NCHW activation buffer, no
//!    lowered matrix anywhere — performs exactly zero heap allocations
//!    once warm;
//!
//! 6. the branch-parallel pipeline regime has a *stable* per-run count
//!    once warm (thread spawning is not allocation-free, but the
//!    per-branch workspace pool ratchets exactly once), and forcing the
//!    same pipeline sequential (`with_branch_workers(1)`) pins the
//!    usual report-only constant;
//!
//! 7. the correction path (`run_corrected_into`) stays zero-alloc once
//!    warm across the localizer families.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::SeqCst);
    f();
    ALLOCS.load(Ordering::SeqCst) - before
}

#[test]
fn steady_state_hot_paths_do_not_allocate() {
    use aiga::prelude::*;
    use aiga_core::registry;
    use aiga_core::schemes::OneSidedThreadAbft;

    // --- 1. Engine level: every bound kernel's hot path is zero-alloc.
    let shape = GemmShape::new(48, 40, 56);
    let a = Matrix::random(48, 56, 11);
    let b = Matrix::random(56, 40, 12);
    let engine = GemmEngine::with_default_tiling(shape);
    let reg = registry::shared();
    for scheme in [
        Scheme::Unprotected,            // fused fast path
        Scheme::GlobalAbft,             // fast path + checksum verification
        Scheme::ThreadLevelOneSided,    // hooked step-ordered walk
        Scheme::ReplicationTraditional, // hooked walk, shadow accumulators
    ] {
        let bound = reg.resolve(scheme).bind(&b);
        let mut ws = Workspace::new();
        bound.run_into(&engine, &a, &[], &mut ws); // warm the workspace
        let n = allocs_during(|| {
            bound.run_into(&engine, &a, &[], &mut ws);
        });
        assert_eq!(n, 0, "{scheme}: engine hot path allocated {n} times");
    }

    // The §2.4 multi-checksum extension honors the contract too.
    let multi = MultiChecksumKernel::new(2).bind(&b);
    let mut ws = Workspace::new();
    multi.run_into(&engine, &a, &[], &mut ws);
    let n = allocs_during(|| {
        multi.run_into(&engine, &a, &[], &mut ws);
    });
    assert_eq!(n, 0, "multi-checksum hot path allocated {n} times");

    // Raw engine entry, hooked scheme, same guarantee.
    let mut ws = Workspace::new();
    engine.run_multi_into(&a, &b, OneSidedThreadAbft::new, &[], &mut ws);
    let n = allocs_during(|| {
        engine.run_multi_into(&a, &b, OneSidedThreadAbft::new, &[], &mut ws);
    });
    assert_eq!(n, 0, "raw hooked engine path allocated {n} times");

    // --- 2. Serving level: steady-state serve allocates only the
    // returned report (a small constant, stable across requests).
    let session = Session::builder(
        Planner::new(DeviceSpec::t4()),
        "dlrm-mlp-bottom",
        zoo::dlrm_mlp_bottom,
    )
    .buckets([8])
    .seed(7)
    .build();
    let request = Matrix::random(8, 13, 42);
    for _ in 0..3 {
        session.serve(&request).unwrap(); // build plan, warm the pool
    }
    let first = allocs_during(|| {
        std::hint::black_box(session.serve(&request).unwrap());
    });
    let second = allocs_during(|| {
        std::hint::black_box(session.serve(&request).unwrap());
    });
    assert_eq!(
        first, second,
        "steady-state serve allocation count must be stable"
    );
    assert!(
        first <= 4,
        "steady-state serve should only allocate the report (saw {first})"
    );

    // --- 3. Conv path: im2col lowering + protected GEMM, zero-alloc
    // once the workspace is warm (the satellite guarantee behind
    // compiled-model serving).
    let input = Tensor::random(2, 3, 12, 12, 81);
    let filters = Tensor::random(8, 3, 3, 3, 82);
    let params = ConvParams {
        c_out: 8,
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    let weights = aiga_nn::conv::filters_to_matrix(&filters);
    let conv_shape = GemmShape::new(2 * 12 * 12, 8, 27);
    let conv_engine = GemmEngine::with_default_tiling(conv_shape);
    for scheme in [Scheme::GlobalAbft, Scheme::ThreadLevelOneSided] {
        let bound = reg.resolve(scheme).bind(&weights);
        let mut ws = Workspace::new();
        let conv_pass = |ws: &mut Workspace| {
            im2col_into(&input, params, ws);
            let a = ws.take_lowering();
            bound.run_into(&conv_engine, &a, &[], ws);
            ws.put_lowering(a);
        };
        conv_pass(&mut ws); // warm the lowering buffer + panels
        let n = allocs_during(|| conv_pass(&mut ws));
        assert_eq!(n, 0, "{scheme}: conv engine path allocated {n} times");
    }

    // Steady-state compiled-model serving (conv stages + pooling +
    // residual epilogues through the session pool) allocates only the
    // returned report, exactly like the MLP path.
    let compiled_session =
        Session::builder_network(Planner::new(DeviceSpec::t4()), "resnet-block", |b| {
            zoo::resnet_block_net(b, 8, 8, 5)
        })
        .buckets([2])
        .build();
    let conv_request = Matrix::random(2, 16 * 8 * 8, 43);
    for _ in 0..3 {
        compiled_session.serve(&conv_request).unwrap(); // compile + warm
    }
    let first = allocs_during(|| {
        std::hint::black_box(compiled_session.serve(&conv_request).unwrap());
    });
    let second = allocs_during(|| {
        std::hint::black_box(compiled_session.serve(&conv_request).unwrap());
    });
    assert_eq!(
        first, second,
        "steady-state compiled serve allocation count must be stable"
    );
    assert!(
        first <= 4,
        "steady-state compiled serve should only allocate the report (saw {first})"
    );

    // A campaign-style loop over a warm ProtectedGemm is zero-alloc too.
    let gemm = ProtectedGemm::random(GemmShape::new(32, 32, 32), Scheme::GlobalAbft, 3);
    let fault = FaultPlan {
        row: 1,
        col: 1,
        after_step: u64::MAX,
        kind: FaultKind::AddValue(500.0),
    };
    let mut ws = Workspace::new();
    gemm.run_into(&[fault], &mut ws);
    let n = allocs_during(|| {
        for _ in 0..5 {
            std::hint::black_box(gemm.run_into(&[fault], &mut ws));
        }
    });
    assert_eq!(n, 0, "warm campaign trials allocated {n} times");

    // --- 4. Block-parallel regime: 256³ sits exactly at
    // BLOCK_PAR_MIN_FLOPS, so on multicore runners this exercises the
    // stripe-parallel arm. Thread spawning is not allocation-free, so
    // the pin here is stability: after the warm run ratchets the stripe
    // pool, every subsequent run costs the same constant (and exactly
    // zero wherever `effective_workers` serializes, e.g. single-core).
    {
        use aiga_gpu::engine::NoScheme;
        let big_a = Matrix::random(256, 256, 61);
        let big_b = Matrix::random(256, 256, 62);
        let big_engine = GemmEngine::with_default_tiling(GemmShape::square(256));
        let mut ws = Workspace::new();
        big_engine.run_multi_into(&big_a, &big_b, || NoScheme, &[], &mut ws);
        let first = allocs_during(|| {
            std::hint::black_box(big_engine.run_multi_into(
                &big_a,
                &big_b,
                || NoScheme,
                &[],
                &mut ws,
            ));
        });
        let second = allocs_during(|| {
            std::hint::black_box(big_engine.run_multi_into(
                &big_a,
                &big_b,
                || NoScheme,
                &[],
                &mut ws,
            ));
        });
        assert_eq!(
            first, second,
            "block-parallel steady state must not ratchet ({first} vs {second})"
        );
        if std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            == 1
        {
            assert_eq!(first, 0, "single-core 256³ stays sequential and zero-alloc");
        }
    }

    // --- 5. Fused k>1 conv path: the engine reads activations through
    // an `Im2col` view of the NCHW buffer — the lowered matrix never
    // exists, and a warm pass is exactly zero-alloc (the view wraps and
    // returns the same buffer).
    {
        let input = Tensor::random(2, 3, 12, 12, 83);
        let params = ConvParams {
            c_out: 8,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let filters = Tensor::random(8, 3, 3, 3, 84);
        let weights = aiga_nn::conv::filters_to_matrix(&filters);
        let conv_shape = GemmShape::new(2 * 12 * 12, 8, 27);
        let conv_engine = GemmEngine::with_default_tiling(conv_shape);
        let view = params.im2col_view(3, 12, 12);
        for scheme in [Scheme::GlobalAbft, Scheme::ThreadLevelOneSided] {
            let bound = reg.resolve(scheme).bind(&weights);
            let mut ws = Workspace::new();
            let mut data = Some(input.data.clone());
            let fused_pass = |ws: &mut Workspace, data: &mut Option<Vec<_>>| {
                let a = Matrix::im2col_lowered(2, view, data.take().unwrap());
                bound.run_into(&conv_engine, &a, &[], ws);
                *data = Some(a.data);
            };
            fused_pass(&mut ws, &mut data); // warm the panels
            let n = allocs_during(|| fused_pass(&mut ws, &mut data));
            assert_eq!(n, 0, "{scheme}: fused conv path allocated {n} times");
        }
    }

    // --- 6. Branch-parallel pipeline regime: SqueezeNet's fire expand
    // levels spawn scoped workers when branch_workers ≥ 2. Spawning is
    // not allocation-free, so the pin is stability once the per-branch
    // workspace pool has ratcheted; the same pipeline forced sequential
    // pins the report-only constant.
    {
        let net = zoo::squeezenet_net(1, 32, 32, 3);
        let schemes = vec![Scheme::ThreadLevelOneSided; net.gemm_count()];
        let request = Matrix::random(1, net.input_features(), 44);

        let sequential =
            aiga_core::ProtectedPipeline::compile(&net, &schemes).with_branch_workers(1);
        let mut ws = Workspace::new();
        for _ in 0..3 {
            sequential.infer_into(&request, None, &mut ws);
        }
        let first = allocs_during(|| {
            std::hint::black_box(sequential.infer_into(&request, None, &mut ws));
        });
        let second = allocs_during(|| {
            std::hint::black_box(sequential.infer_into(&request, None, &mut ws));
        });
        assert_eq!(first, second, "sequential compiled infer must be stable");
        assert!(
            first <= 4,
            "serialized branch levels should only allocate the report (saw {first})"
        );

        let parallel = aiga_core::ProtectedPipeline::compile(&net, &schemes).with_branch_workers(2);
        let mut ws = Workspace::new();
        for _ in 0..3 {
            parallel.infer_into(&request, None, &mut ws);
        }
        let first = allocs_during(|| {
            std::hint::black_box(parallel.infer_into(&request, None, &mut ws));
        });
        let second = allocs_during(|| {
            std::hint::black_box(parallel.infer_into(&request, None, &mut ws));
        });
        assert_eq!(
            first, second,
            "branch-parallel steady state must not ratchet ({first} vs {second})"
        );
    }

    // --- 7. Correction path: localize + targeted recompute + re-verify
    // (`run_corrected_into`) stays zero-alloc once warm, across all
    // three localizer families (column, lane, and row).
    for scheme in [
        Scheme::GlobalAbft,             // column localizer
        Scheme::ThreadLevelOneSided,    // lane localizer
        Scheme::ReplicationTraditional, // lane localizer, majority vote
        Scheme::MultiChecksum(2),       // row localizer (weighted ratio)
    ] {
        let gemm = ProtectedGemm::random(GemmShape::new(48, 40, 56), scheme, 11);
        let fault = FaultPlan {
            row: 3,
            col: 5,
            after_step: u64::MAX,
            kind: FaultKind::AddValue(300.0),
        };
        let mut ws = Workspace::new();
        let verdict = gemm.run_corrected_into(&[fault], &mut ws); // warm
        assert!(verdict.is_corrected(), "{scheme}: {verdict:?}");
        let n = allocs_during(|| {
            for _ in 0..5 {
                std::hint::black_box(gemm.run_corrected_into(&[fault], &mut ws));
            }
        });
        assert_eq!(n, 0, "{scheme}: warm correction path allocated {n} times");
    }
}
