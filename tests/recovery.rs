//! End-to-end recovery: localization, targeted recompute, transparent
//! retry, and adaptive protection control.
//!
//! The oracle throughout is *byte-equality*: a corrected run must
//! produce exactly the bits of a clean run — not "close enough", the
//! identical FP32 words — because the targeted recompute replays the
//! engine's own fused inner loop over the staged operand panels.

use aiga::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Every scheme that can localize, across all three localizer families
/// (column for global ABFT, lane for thread-level + replication, row
/// for the weighted multi-checksum).
fn localizing_schemes() -> [Scheme; 6] {
    [
        Scheme::GlobalAbft,
        Scheme::ThreadLevelOneSided,
        Scheme::ThreadLevelTwoSided,
        Scheme::ReplicationSingleAcc,
        Scheme::ReplicationTraditional,
        Scheme::MultiChecksum(2),
    ]
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

// --- Scheme level -------------------------------------------------------

#[test]
fn every_localizing_scheme_repairs_to_byte_equality() {
    let shape = GemmShape::new(48, 40, 56);
    // Epilogue faults and mid-K accumulator faults, several positions
    // (incl. the cropped fringe of the last full tile).
    let faults = [
        (3usize, 5usize, u64::MAX),
        (0, 0, u64::MAX),
        (47, 39, u64::MAX),
        (17, 22, 1u64),
        (40, 8, 2u64),
    ];
    for scheme in localizing_schemes() {
        let gemm = ProtectedGemm::random(shape, scheme, 11);
        let clean = gemm.run_with(&[]);
        let mut ws = Workspace::new();
        for &(row, col, after_step) in &faults {
            let fault = FaultPlan {
                row,
                col,
                after_step,
                kind: FaultKind::AddValue(300.0),
            };
            let verdict = gemm.run_corrected_into(&[fault], &mut ws);
            assert!(
                verdict.is_corrected(),
                "{scheme} at ({row},{col},{after_step}): {verdict:?}"
            );
            assert_eq!(
                bits(&ws.output().c),
                bits(&clean.output.c),
                "{scheme} at ({row},{col},{after_step}): repair not byte-equal"
            );
        }
    }
}

#[test]
fn corrected_verdicts_carry_the_right_site_family() {
    let shape = GemmShape::new(48, 40, 56);
    let fault = FaultPlan {
        row: 3,
        col: 5,
        after_step: u64::MAX,
        kind: FaultKind::AddValue(300.0),
    };
    let mut ws = Workspace::new();
    let mut site_of = |scheme: Scheme| {
        let gemm = ProtectedGemm::random(shape, scheme, 11);
        match gemm.run_corrected_into(&[fault], &mut ws) {
            Verdict::Corrected { site, vote, .. } => (site, vote),
            other => panic!("{scheme}: {other:?}"),
        }
    };
    // The column localizer pins the exact faulted column.
    let (site, vote) = site_of(Scheme::GlobalAbft);
    assert_eq!(site, FaultSite::Column { col: 5 });
    assert!(!vote);
    // The row localizer recovers the faulted row from the residual ratio.
    let (site, vote) = site_of(Scheme::MultiChecksum(2));
    assert_eq!(site, FaultSite::Row { row: 3 });
    assert!(!vote);
    // Lane localizers name the flagged lane; replication resolves by vote.
    assert!(matches!(
        site_of(Scheme::ThreadLevelOneSided),
        (FaultSite::Lane { .. }, false)
    ));
    assert!(matches!(
        site_of(Scheme::ReplicationTraditional),
        (FaultSite::Lane { .. }, true)
    ));
    assert!(matches!(
        site_of(Scheme::ReplicationSingleAcc),
        (FaultSite::Lane { .. }, true)
    ));
}

#[test]
fn unlocalizable_verdicts_pass_through_unrepaired() {
    // `Unprotected` never flags; a plain detect-only run through the
    // corrected entry point must stay `Clean`/`Detected`, never invent
    // a repair.
    let shape = GemmShape::new(32, 32, 32);
    let fault = FaultPlan {
        row: 1,
        col: 1,
        after_step: u64::MAX,
        kind: FaultKind::AddValue(500.0),
    };
    let mut ws = Workspace::new();
    let g = ProtectedGemm::random(shape, Scheme::Unprotected, 7);
    assert!(g.run_corrected_into(&[fault], &mut ws).is_clean());
    // A clean run through the corrected path is a no-op.
    let g = ProtectedGemm::random(shape, Scheme::GlobalAbft, 7);
    assert!(g.run_corrected_into(&[], &mut ws).is_clean());
}

// --- Pipeline level -----------------------------------------------------

#[test]
fn mid_pipeline_fault_recomputes_one_stage_only() {
    let planner = Planner::new(DeviceSpec::t4());
    let session = |recovery: bool| {
        Session::builder(planner.clone(), "dlrm-mlp-bottom", zoo::dlrm_mlp_bottom)
            .buckets([8])
            .seed(7)
            .recovery(recovery)
            .build()
    };
    let request = Matrix::random(8, 13, 42);
    let fault = PipelineFault {
        layer: 1,
        fault: FaultPlan {
            row: 2,
            col: 50,
            after_step: 4,
            kind: FaultKind::AddValue(50.0),
        },
    };

    let clean = session(false).serve(&request).unwrap();

    // Detect-only: the fault propagates; output differs from clean.
    let detecting = session(false);
    let tainted = detecting.serve_with_fault(&request, Some(fault)).unwrap();
    assert!(tainted.report.fault_detected());
    assert_ne!(bits(&tainted.report.output), bits(&clean.report.output));

    // Recovery: the implicated slice is recomputed mid-pass — exactly
    // one correction record, zero unrepaired detections, and the final
    // output is byte-equal to the clean pass.
    let recovering = session(true);
    let repaired = recovering.serve_with_fault(&request, Some(fault)).unwrap();
    assert!(!repaired.report.fault_detected());
    assert!(repaired.report.fault_corrected());
    assert_eq!(repaired.report.corrections.len(), 1);
    let c = &repaired.report.corrections[0];
    assert_eq!(c.layer, 1);
    assert!(matches!(
        c.site,
        FaultSite::Lane { .. } | FaultSite::Column { .. }
    ));
    assert_eq!(bits(&repaired.report.output), bits(&clean.report.output));

    let stats = recovering.stats();
    assert_eq!(stats.corrections, 1);
    assert_eq!(stats.faulty_requests, 0, "corrected ≠ faulty");
}

#[test]
fn recovery_pipeline_is_inert_on_clean_traffic() {
    let planner = Planner::new(DeviceSpec::t4());
    let mk = |recovery: bool| {
        Session::builder(planner.clone(), "dlrm-mlp-bottom", zoo::dlrm_mlp_bottom)
            .buckets([8])
            .seed(7)
            .recovery(recovery)
            .build()
    };
    let request = Matrix::random(8, 13, 43);
    let a = mk(false).serve(&request).unwrap();
    let b = mk(true).serve(&request).unwrap();
    assert_eq!(bits(&a.report.output), bits(&b.report.output));
    assert!(b.report.corrections.is_empty());
}

// --- Server level -------------------------------------------------------

#[test]
fn server_retry_hides_verdicts_under_concurrent_load() {
    let session = Session::builder(
        Planner::new(DeviceSpec::t4()),
        "dlrm-mlp-bottom",
        zoo::dlrm_mlp_bottom,
    )
    .buckets([8, 32])
    .seed(7)
    .build();
    let reference = Session::builder(
        Planner::new(DeviceSpec::t4()),
        "dlrm-mlp-bottom",
        zoo::dlrm_mlp_bottom,
    )
    .buckets([8, 32])
    .seed(7)
    .build();
    let server = Server::builder(session)
        .workers(2)
        .retry_on_verdict(true)
        .build();

    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 3;
    let fault = PipelineFault {
        layer: 1,
        fault: FaultPlan {
            row: 2,
            col: 50,
            after_step: 4,
            kind: FaultKind::AddValue(50.0),
        },
    };
    let mismatches = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let client = server.client();
            let reference = &reference;
            let mismatches = &mismatches;
            scope.spawn(move || {
                for i in 0..PER_CLIENT {
                    let rows = 3 + (c + i) % 6;
                    let request = Matrix::random(rows, 13, 900 + (c * PER_CLIENT + i) as u64);
                    // Every request carries the transient fault; the
                    // retry must make each reply indistinguishable from
                    // a clean solo serve.
                    let reply = client
                        .submit_with_fault(&request, Some(fault))
                        .unwrap()
                        .wait()
                        .unwrap();
                    assert!(!reply.report.fault_detected(), "client {c} req {i}");
                    let solo = reference.serve(&request).unwrap();
                    if bits(&reply.report.output) != bits(&solo.report.output) {
                        mismatches.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(mismatches.load(Ordering::Relaxed), 0);
    let stats = server.shutdown();
    assert_eq!(stats.completed, (CLIENTS * PER_CLIENT) as u64);
    assert_eq!(stats.retries, (CLIENTS * PER_CLIENT) as u64);
    assert!(stats.retry_p50_latency_ns > 0);
}

#[test]
fn recovery_through_the_server_is_byte_equal_under_concurrent_load() {
    let session = Session::builder(
        Planner::new(DeviceSpec::t4()),
        "dlrm-mlp-bottom",
        zoo::dlrm_mlp_bottom,
    )
    .buckets([8])
    .seed(7)
    .recovery(true)
    .build();
    let reference = Session::builder(
        Planner::new(DeviceSpec::t4()),
        "dlrm-mlp-bottom",
        zoo::dlrm_mlp_bottom,
    )
    .buckets([8])
    .seed(7)
    .build();
    let server = Server::builder(session).workers(2).build();

    const CLIENTS: usize = 4;
    let fault = PipelineFault {
        layer: 0,
        fault: FaultPlan {
            row: 1,
            col: 100,
            after_step: 2,
            kind: FaultKind::AddValue(80.0),
        },
    };
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let client = server.client();
            let reference = &reference;
            scope.spawn(move || {
                for i in 0..3 {
                    let request = Matrix::random(5, 13, 700 + (c * 3 + i) as u64);
                    let reply = client
                        .submit_with_fault(&request, Some(fault))
                        .unwrap()
                        .wait()
                        .unwrap();
                    assert!(reply.report.fault_corrected(), "client {c} req {i}");
                    assert!(!reply.report.fault_detected());
                    let solo = reference.serve(&request).unwrap();
                    assert_eq!(
                        bits(&reply.report.output),
                        bits(&solo.report.output),
                        "client {c} req {i}: corrected reply must be byte-equal"
                    );
                }
            });
        }
    });
    let stats = server.shutdown();
    assert_eq!(stats.session.corrections, (CLIENTS * 3) as u64);
    assert_eq!(stats.session.faulty_requests, 0);
    assert_eq!(stats.retries, 0, "retry was not enabled");
}

// --- Adaptive controller ------------------------------------------------

#[test]
fn controller_escalates_and_relaxes_with_hysteresis() {
    let cfg = AdaptConfig {
        window: 4,
        escalate_threshold: 0.5,
        relax_threshold: 0.01,
        min_dwell: 4,
    };
    let mut ctrl = AdaptiveController::new(cfg, vec![Scheme::GlobalAbft]);

    // A burst of faults escalates one rung once the window fills.
    let mut adjustment = None;
    for _ in 0..4 {
        adjustment = ctrl.observe(0, true).or(adjustment);
    }
    let up = adjustment.expect("escalation");
    assert!(up.escalated);
    assert_eq!(up.from, Scheme::GlobalAbft);
    assert_eq!(up.to, Scheme::MultiChecksum(2));

    // Hysteresis: the switch cleared the window and started a dwell, so
    // clean traffic inside it cannot flap the scheme back.
    for i in 0..3 {
        assert_eq!(ctrl.observe(0, false), None, "flapped at {i}");
    }
    // Once the window refills past the dwell, full relaxation follows.
    let down = ctrl.observe(0, false).expect("relaxation");
    assert!(!down.escalated);
    assert_eq!(down.to, Scheme::GlobalAbft);
    assert_eq!(ctrl.current()[0], Scheme::GlobalAbft);
}

#[test]
fn adaptive_session_escalates_under_faults_and_relaxes_when_clean() {
    let cfg = AdaptConfig {
        window: 2,
        escalate_threshold: 0.5,
        relax_threshold: 0.01,
        min_dwell: 2,
    };
    let session = Session::builder(
        Planner::new(DeviceSpec::t4()),
        "dlrm-mlp-bottom",
        zoo::dlrm_mlp_bottom,
    )
    .buckets([8])
    .seed(7)
    .adaptive(cfg)
    .build();
    let request = Matrix::random(8, 13, 42);
    let fault = PipelineFault {
        layer: 1,
        fault: FaultPlan {
            row: 2,
            col: 50,
            after_step: 4,
            kind: FaultKind::AddValue(50.0),
        },
    };
    let baseline = session.serve(&request).unwrap().schemes.clone();

    // Hammer layer 1 with faults until the controller escalates it.
    let mut escalated = None;
    for i in 0..8 {
        session.serve_with_fault(&request, Some(fault)).unwrap();
        let r = session.serve_with_fault(&request, Some(fault)).unwrap();
        if r.schemes[1] != baseline[1] {
            escalated = Some((i, r.schemes.clone()));
            break;
        }
    }
    let (_, schemes) = escalated.expect("layer 1 must escalate");
    assert_eq!(schemes[..1], baseline[..1], "other layers stay put");
    assert!(session.stats().adaptations >= 1);

    // Clean traffic relaxes it back to the static plan.
    let mut relaxed = false;
    for _ in 0..16 {
        let r = session.serve(&request).unwrap();
        if r.schemes[..] == baseline[..] {
            relaxed = true;
            break;
        }
    }
    assert!(relaxed, "layer 1 must relax back to baseline");
    assert!(session.stats().adaptations >= 2);
    // Back at baseline the escalated overlay is gone: outputs are
    // byte-equal to the static plan's.
    let r = session.serve(&request).unwrap();
    let s = Session::builder(
        Planner::new(DeviceSpec::t4()),
        "dlrm-mlp-bottom",
        zoo::dlrm_mlp_bottom,
    )
    .buckets([8])
    .seed(7)
    .build();
    assert_eq!(
        bits(&r.report.output),
        bits(&s.serve(&request).unwrap().report.output)
    );
}

// --- Campaign oracle ----------------------------------------------------

#[test]
fn correction_campaign_oracle_holds_for_every_localizing_scheme() {
    let shape = GemmShape::new(32, 32, 32);
    // Deterministic sweep of large epilogue faults across the output.
    let faults: Vec<FaultPlan> = (0..48)
        .map(|i| FaultPlan {
            row: (i * 7) % 32,
            col: (i * 11) % 32,
            after_step: if i % 3 == 0 { u64::MAX } else { (i % 8) as u64 },
            kind: FaultKind::AddValue(200.0 + i as f32),
        })
        .collect();
    for scheme in localizing_schemes() {
        let campaign = Campaign::new(shape, scheme, 21).with_correction(true);
        let stats = campaign.run_faults(&faults);
        assert_eq!(stats.trials, faults.len());
        assert_eq!(
            stats.corrected,
            faults.len(),
            "{scheme}: every large fault must be repaired to byte-equality ({stats:?})"
        );
        assert_eq!(stats.sdc, 0, "{scheme}");
        assert_eq!(
            stats.detected, 0,
            "{scheme}: nothing should survive unrepaired"
        );
        assert!((stats.correction_rate() - 1.0).abs() < 1e-12);
    }
}

#[test]
fn replication_correction_eliminates_sdc_on_random_bit_flips() {
    // Exact-compare replication catches every corrupting flip; with
    // correction on, the lane recompute repairs them all — zero SDC,
    // zero unrepaired detections, over the full random-flip model.
    let shape = GemmShape::new(32, 32, 32);
    let campaign = Campaign::new(shape, Scheme::ReplicationTraditional, 13).with_correction(true);
    let stats = campaign.run_bit_flips(120, 14);
    assert_eq!(stats.sdc, 0, "{stats:?}");
    assert_eq!(stats.detected, 0, "{stats:?}");
    assert!(stats.corrected > 0);
    assert_eq!(stats.false_positives, 0);
}

#[test]
fn detailed_trials_feed_the_adaptive_controller() {
    // The campaign's per-trial records and the controller share one
    // observation type: replaying a campaign against a controller
    // escalates it exactly as live traffic would.
    let shape = GemmShape::new(32, 32, 32);
    let campaign = Campaign::new(shape, Scheme::GlobalAbft, 17).with_correction(true);
    let faults: Vec<FaultPlan> = (0..8)
        .map(|i| FaultPlan {
            row: i,
            col: (3 * i) % 32,
            after_step: u64::MAX,
            kind: FaultKind::AddValue(300.0),
        })
        .collect();
    let trials = campaign.run_faults_detailed(&faults);
    assert_eq!(trials.len(), faults.len());
    for t in &trials {
        assert_eq!(t.observation.scheme, Scheme::GlobalAbft);
        assert!(t.observation.fault_flagged());
        assert_eq!(t.outcome, Outcome::Corrected);
    }
    let cfg = AdaptConfig {
        window: 4,
        escalate_threshold: 0.5,
        relax_threshold: 0.01,
        min_dwell: 1,
    };
    let mut ctrl = AdaptiveController::new(cfg, vec![Scheme::GlobalAbft]);
    let mut adjusted = None;
    for t in &trials {
        adjusted = ctrl.observe_trial(0, &t.observation).or(adjusted);
    }
    let adj = adjusted.expect("replayed faults must escalate");
    assert!(adj.escalated);
}
