//! Fused-vs-materialized conv lowering equivalence sweep.
//!
//! The fused conv path feeds the protected GEMM engine an
//! `MatrixLayout::Im2col` (k > 1) or `MatrixLayout::NchwLowered` (1×1)
//! *view* of the NCHW activation buffer, so the lowered matrix never
//! exists in memory. The contract is strict: the panel packer walks the
//! view in exactly the element order of the materialized `im2col`
//! lowering, so every downstream byte — outputs, checksums, residuals,
//! detections — is identical.
//!
//! This sweep pins that contract across the zoo's kernel-shape
//! families (SqueezeNet's 7×7 s2 stem, ResNet's strided 3×3, AlexNet's
//! 11×11 s4, a depthwise-ish single-input-channel conv, and a 1×1
//! pointwise), crossed with clean and faulted runs under one scheme per
//! protection family. The same file runs on the CI scalar-oracle leg
//! (`AIGA_FORCE_SCALAR=1`) so both the AVX2 and scalar packers are
//! covered.

use aiga::prelude::*;
use aiga_core::registry;
use aiga_nn::conv::filters_to_matrix;

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// One scheme per family: global checksum, one-sided thread-level,
/// replication, and the §2.4 multi-checksum extension.
const SCHEMES: [Scheme; 4] = [
    Scheme::GlobalAbft,
    Scheme::ThreadLevelOneSided,
    Scheme::ReplicationSingleAcc,
    Scheme::MultiChecksum(2),
];

/// Runs `bound` over both lowerings of the same conv and asserts the
/// outputs, verdicts, and detection records are byte-identical.
fn assert_paths_match(
    bound: &dyn BoundKernel,
    engine: &GemmEngine,
    materialized: &Matrix,
    fused: &Matrix,
    faults: &[FaultPlan],
    what: &str,
) {
    let mut ws_m = Workspace::new();
    let mut ws_f = Workspace::new();
    let v_m = bound.run_into(engine, materialized, faults, &mut ws_m);
    let v_f = bound.run_into(engine, fused, faults, &mut ws_f);
    assert_eq!(v_m, v_f, "{what}: verdict diverged");
    assert_eq!(
        bits(&ws_m.output().c),
        bits(&ws_f.output().c),
        "{what}: output bytes diverged"
    );
    assert_eq!(
        ws_m.output().detections,
        ws_f.output().detections,
        "{what}: detection records diverged"
    );
    if !faults.is_empty() {
        assert!(
            !v_m.is_clean(),
            "{what}: injected fault went undetected on both paths"
        );
    }
}

#[test]
fn fused_im2col_view_is_byte_identical_to_materialized_lowering() {
    // (c_in, c_out, kernel, stride, padding, h, w) per zoo family.
    let cases: [(usize, usize, usize, usize, usize, usize, usize); 4] = [
        (3, 8, 7, 2, 0, 19, 17),  // SqueezeNet v1.0 7×7 stride-2 stem
        (4, 6, 3, 2, 1, 13, 11),  // ResNet strided 3×3 downsample
        (3, 4, 11, 4, 2, 23, 19), // AlexNet 11×11 stride-4 stem
        (1, 5, 3, 1, 1, 12, 10),  // depthwise-ish single input channel
    ];
    let reg = registry::shared();
    for (ci, &(c_in, c_out, kernel, stride, padding, h, w)) in cases.iter().enumerate() {
        let batch = 2;
        let seed = 300 + ci as u64 * 2;
        let input = Tensor::random(batch, c_in, h, w, seed);
        let filters = Tensor::random(c_out, c_in, kernel, kernel, seed + 1);
        let weights = filters_to_matrix(&filters);
        let params = ConvParams {
            c_out,
            kernel,
            stride,
            padding,
        };

        let materialized = im2col(&input, params);
        let view = params.im2col_view(c_in, h, w);
        let fused = Matrix::im2col_lowered(batch, view, input.data.clone());
        assert_eq!(fused.rows, materialized.rows, "case {ci}: row mismatch");
        assert_eq!(fused.cols, materialized.cols, "case {ci}: col mismatch");

        let shape = GemmShape::new(
            materialized.rows as u64,
            c_out as u64,
            materialized.cols as u64,
        );
        let engine = GemmEngine::with_default_tiling(shape);
        let fault = FaultPlan {
            row: materialized.rows - 1,
            col: c_out - 1,
            after_step: u64::MAX,
            kind: FaultKind::AddValue(500.0),
        };
        for scheme in SCHEMES {
            let bound = reg.resolve(scheme).bind(&weights);
            for faults in [&[][..], &[fault][..]] {
                let label = format!(
                    "case {ci} (k{kernel}s{stride}p{padding}) {scheme} {}",
                    if faults.is_empty() {
                        "clean"
                    } else {
                        "faulted"
                    }
                );
                assert_paths_match(&*bound, &engine, &materialized, &fused, faults, &label);
            }
        }
    }
}

#[test]
fn pointwise_nchw_view_is_byte_identical_to_materialized_lowering() {
    let (batch, c_in, c_out, h, w) = (2, 5, 9, 11, 7);
    let input = Tensor::random(batch, c_in, h, w, 340);
    let filters = Tensor::random(c_out, c_in, 1, 1, 341);
    let weights = filters_to_matrix(&filters);
    let params = ConvParams {
        c_out,
        kernel: 1,
        stride: 1,
        padding: 0,
    };
    assert!(params.is_pointwise());

    let materialized = im2col(&input, params);
    let fused = Matrix::nchw_lowered(batch, c_in, h * w, input.data.clone());
    assert_eq!(fused.rows, materialized.rows);
    assert_eq!(fused.cols, materialized.cols);

    let shape = GemmShape::new(
        materialized.rows as u64,
        c_out as u64,
        materialized.cols as u64,
    );
    let engine = GemmEngine::with_default_tiling(shape);
    let fault = FaultPlan {
        row: 0,
        col: 1,
        after_step: u64::MAX,
        kind: FaultKind::AddValue(400.0),
    };
    let reg = registry::shared();
    for scheme in SCHEMES {
        let bound = reg.resolve(scheme).bind(&weights);
        for faults in [&[][..], &[fault][..]] {
            let label = format!(
                "pointwise {scheme} {}",
                if faults.is_empty() {
                    "clean"
                } else {
                    "faulted"
                }
            );
            assert_paths_match(&*bound, &engine, &materialized, &fused, faults, &label);
        }
    }
}
