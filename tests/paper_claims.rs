//! Integration tests pinning the paper's headline quantitative claims on
//! the simulated substrate (shape claims, not absolute microseconds —
//! see EXPERIMENTS.md).

use aiga::core::cost::evaluate_layer;
use aiga::core::{Planner, Scheme};
use aiga::gpu::timing::Calibration;
use aiga::gpu::{DeviceSpec, GemmShape};
use aiga::nn::zoo;

fn setup() -> (DeviceSpec, Calibration) {
    (DeviceSpec::t4(), Calibration::default())
}

/// §1/§6: intensity-guided ABFT reduces execution-time overhead versus
/// global ABFT on *every* evaluated NN, with the biggest wins on
/// low-intensity models.
#[test]
fn intensity_guided_beats_global_on_all_fourteen_nns() {
    let (dev, calib) = setup();
    let mut reductions = Vec::new();
    for model in zoo::figure8_models() {
        let plan = Planner::new(dev.clone()).calibration(calib).plan(&model);
        let global = plan.fixed_scheme_overhead_pct(Scheme::GlobalAbft);
        let guided = plan.intensity_guided_overhead_pct();
        assert!(
            guided <= global + 1e-12,
            "{}: guided {guided:.2}% > global {global:.2}%",
            model.name
        );
        reductions.push((model.aggregate_intensity(), global / guided.max(1e-9)));
    }
    // The largest reductions come from the low-intensity half (median —
    // robust against single-model outliers like AlexNet, whose batch-1
    // FC layers are launch-dominated).
    reductions.sort_by(|a, b| a.0.total_cmp(&b.0));
    let median = |rs: &[(f64, f64)]| {
        let mut v: Vec<f64> = rs.iter().map(|r| r.1).collect();
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let low = median(&reductions[..7]);
    let high = median(&reductions[7..]);
    assert!(
        low > high,
        "low-AI models should benefit more: median {low:.2}x vs {high:.2}x"
    );
}

/// §6.4.1: smaller input resolution lowers intensity and increases the
/// benefit of intensity-guided ABFT for CNNs.
#[test]
fn lower_resolution_increases_the_reduction() {
    let (dev, calib) = setup();
    let mut hd_red = 0.0;
    let mut small_red = 0.0;
    for (h, w, acc) in [(1080u64, 1920u64, &mut hd_red), (224, 224, &mut small_red)] {
        let model = zoo::resnet50(1, h, w);
        let plan = Planner::new(dev.clone()).calibration(calib).plan(&model);
        *acc = plan.fixed_scheme_overhead_pct(Scheme::GlobalAbft)
            / plan.intensity_guided_overhead_pct().max(1e-9);
    }
    assert!(
        small_red > hd_red,
        "224x224 reduction {small_red:.2}x should exceed HD {hd_red:.2}x"
    );
}

/// Fig. 12 banner claims: thread-level wins left of the CMR (paper: up
/// to 6.5× lower), global wins right of it (paper: up to 14× lower),
/// and replication blows past 70% at the largest sizes.
#[test]
fn figure12_banner_ratios_hold() {
    let (dev, calib) = setup();
    let mut best_left = 0.0f64;
    let mut best_right = 0.0f64;
    for s in [32u64, 64, 128, 256, 512, 1024, 2048] {
        let shape = GemmShape::square(s);
        let (_, ts) = evaluate_layer(
            shape,
            &[
                Scheme::ThreadLevelOneSided,
                Scheme::GlobalAbft,
                Scheme::ReplicationSingleAcc,
            ],
            &dev,
            &calib,
        );
        let one = ts[0].overhead_pct;
        let glob = ts[1].overhead_pct;
        if shape.arithmetic_intensity_fp16() < dev.cmr() {
            best_left = best_left.max(glob / one.max(1e-9));
        } else {
            best_right = best_right.max(one / glob.max(1e-9));
            assert!(ts[2].overhead_pct > 70.0, "replication at {s}");
        }
    }
    assert!(
        best_left > 3.0,
        "thread-level advantage only {best_left:.1}x"
    );
    assert!(best_right > 5.0, "global advantage only {best_right:.1}x");
}

/// §5.3: intensity-guided ABFT is exactly the per-layer minimum of its
/// candidates — it can never lose to either.
#[test]
fn intensity_guided_is_the_per_layer_minimum() {
    let (dev, calib) = setup();
    let model = zoo::resnet50(1, 224, 224);
    let plan = Planner::new(dev.clone()).calibration(calib).plan(&model);
    for l in &plan.layers {
        let min = l
            .candidates
            .iter()
            .map(|c| c.estimate.total_s)
            .fold(f64::MAX, f64::min);
        assert_eq!(l.chosen_s(), min, "layer {}", l.name);
    }
}

/// §7.1: the adaptation is device-aware — on a low-CMR device (P4) more
/// square sizes choose global ABFT than on the high-CMR T4.
#[test]
fn selection_shifts_with_device_cmr() {
    let calib = Calibration::default();
    let count_thread_wins = |dev: &DeviceSpec| {
        [64u64, 128, 256, 512, 1024, 2048]
            .into_iter()
            .filter(|&s| {
                let (_, ts) = evaluate_layer(
                    GemmShape::square(s),
                    &Scheme::intensity_guided_candidates(),
                    dev,
                    &calib,
                );
                ts.iter()
                    .min_by(|a, b| a.estimate.total_s.total_cmp(&b.estimate.total_s))
                    .unwrap()
                    .scheme
                    == Scheme::ThreadLevelOneSided
            })
            .count()
    };
    let t4_wins = count_thread_wins(&DeviceSpec::t4());
    let p4_wins = count_thread_wins(&DeviceSpec::p4());
    assert!(
        t4_wins >= p4_wins,
        "higher CMR should favor thread-level at more sizes: T4 {t4_wins} vs P4 {p4_wins}"
    );
}
