//! Property-based integration tests on the core ABFT invariants.

use aiga::core::{ProtectedGemm, Scheme, Verdict};
use aiga::gpu::engine::{FaultKind, FaultPlan, GemmEngine, Matrix, NoScheme};
use aiga::gpu::{GemmShape, TilingConfig};
use proptest::prelude::*;

/// Small-but-varied GEMM shapes (kept modest: the functional engine
/// executes every MAC).
fn shapes() -> impl Strategy<Value = GemmShape> {
    (1u64..=48, 1u64..=48, 1u64..=48).prop_map(|(m, n, k)| GemmShape::new(m, n, k))
}

fn protected_schemes() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::GlobalAbft),
        Just(Scheme::ThreadLevelOneSided),
        Just(Scheme::ThreadLevelTwoSided),
        Just(Scheme::ReplicationSingleAcc),
        Just(Scheme::ReplicationTraditional),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Soundness: on fault-free data, no scheme ever raises a flag, for
    /// any shape and any seed. (The tolerance analysis is doing its job.)
    #[test]
    fn no_scheme_false_positives(shape in shapes(), scheme in protected_schemes(), seed in 0u64..1000) {
        let report = ProtectedGemm::random(shape, scheme, seed).run();
        prop_assert!(report.verdict.is_clean(),
            "{scheme} flagged clean data on {shape} (seed {seed}): {:?}", report.verdict);
    }

    /// Completeness floor: a large additive corruption is detected by
    /// every scheme wherever and whenever it strikes.
    #[test]
    fn large_faults_never_escape(
        shape in shapes(),
        scheme in protected_schemes(),
        seed in 0u64..200,
        frac_r in 0.0f64..1.0,
        frac_c in 0.0f64..1.0,
        epilogue in any::<bool>(),
    ) {
        let row = ((shape.m - 1) as f64 * frac_r) as usize;
        let col = ((shape.n - 1) as f64 * frac_c) as usize;
        let fault = FaultPlan {
            row,
            col,
            after_step: if epilogue { u64::MAX } else { 0 },
            kind: FaultKind::AddValue(1.0e4),
        };
        let report = ProtectedGemm::random(shape, scheme, seed).with_fault(fault).run();
        prop_assert!(report.verdict.is_detected(),
            "{scheme} missed a 1e4 corruption at ({row},{col}) on {shape}");
    }

    /// Protection never changes the computed product.
    #[test]
    fn schemes_do_not_perturb_results(shape in shapes(), scheme in protected_schemes(), seed in 0u64..100) {
        let clean = ProtectedGemm::random(shape, Scheme::Unprotected, seed).run();
        let protected = ProtectedGemm::random(shape, scheme, seed).run();
        prop_assert_eq!(&clean.output.c, &protected.output.c);
    }

    /// The functional engine agrees with the FP64 reference within FP32
    /// accumulation error for arbitrary shapes and tilings.
    #[test]
    fn engine_matches_reference(
        m in 1u64..40, n in 1u64..40, k in 1u64..64,
        tiling_idx in 0usize..3,
        seed in 0u64..100,
    ) {
        let shape = GemmShape::new(m, n, k);
        let tiling = TilingConfig::candidates()[tiling_idx];
        let a = Matrix::random(m as usize, k as usize, seed);
        let b = Matrix::random(k as usize, n as usize, seed + 1);
        let out = GemmEngine::new(shape, tiling).run(&a, &b, || NoScheme, None);
        let reference = aiga::gpu::engine::gemm_reference_f64(&a, &b);
        for (i, (&got, &want)) in out.c.iter().zip(&reference).enumerate() {
            let err = (got as f64 - want).abs();
            let bound = 1e-5 * (k as f64) * 4.0 + 1e-6;
            prop_assert!(err < bound, "elem {i}: {got} vs {want} (k={k})");
        }
    }

    /// Verdict classification is exhaustive and consistent: a detected
    /// verdict always carries residual > threshold.
    #[test]
    fn detected_verdicts_carry_consistent_evidence(
        shape in shapes(),
        scheme in protected_schemes(),
        bit in 24u8..31,
    ) {
        let fault = FaultPlan { row: 0, col: 0, after_step: u64::MAX, kind: FaultKind::BitFlip(bit) };
        let report = ProtectedGemm::random(shape, scheme, 17).with_fault(fault).run();
        if let Verdict::Detected { residual, threshold } = report.verdict {
            prop_assert!(residual > threshold);
            prop_assert!(residual.is_finite() || matches!(scheme, Scheme::ReplicationTraditional));
        }
    }
}
