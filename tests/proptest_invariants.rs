//! Randomized property tests on the core ABFT invariants.
//!
//! Formerly written with `proptest`; the build environment has no
//! crates.io access, so the same properties are exercised as seeded
//! deterministic case loops drawn from `aiga_util::Rng64` — every
//! failure reproduces exactly.

use aiga::prelude::*;
use aiga::util::Rng64;

/// Small-but-varied GEMM shapes (kept modest: the functional engine
/// executes every MAC).
fn random_shape(rng: &mut Rng64) -> GemmShape {
    GemmShape::new(
        rng.range_u64(1, 49),
        rng.range_u64(1, 49),
        rng.range_u64(1, 49),
    )
}

fn random_protected_scheme(rng: &mut Rng64) -> Scheme {
    Scheme::all_protected()[rng.range_usize(0, 5)]
}

/// Soundness: on fault-free data, no scheme ever raises a flag, for any
/// shape and any seed. (The tolerance analysis is doing its job.)
#[test]
fn no_scheme_false_positives() {
    let mut rng = Rng64::seed_from_u64(0x5EED_0001);
    for _ in 0..48 {
        let shape = random_shape(&mut rng);
        let scheme = random_protected_scheme(&mut rng);
        let seed = rng.range_u64(0, 1000);
        let report = ProtectedGemm::random(shape, scheme, seed).run();
        assert!(
            report.verdict.is_clean(),
            "{scheme} flagged clean data on {shape} (seed {seed}): {:?}",
            report.verdict
        );
    }
}

/// Completeness floor: a large additive corruption is detected by every
/// scheme wherever and whenever it strikes.
#[test]
fn large_faults_never_escape() {
    let mut rng = Rng64::seed_from_u64(0x5EED_0002);
    for _ in 0..48 {
        let shape = random_shape(&mut rng);
        let scheme = random_protected_scheme(&mut rng);
        let seed = rng.range_u64(0, 200);
        let row = rng.range_u64(0, shape.m) as usize;
        let col = rng.range_u64(0, shape.n) as usize;
        let epilogue = rng.gen_bool(0.5);
        let fault = FaultPlan {
            row,
            col,
            after_step: if epilogue { u64::MAX } else { 0 },
            kind: FaultKind::AddValue(1.0e4),
        };
        let report = ProtectedGemm::random(shape, scheme, seed)
            .with_fault(fault)
            .run();
        assert!(
            report.verdict.is_detected(),
            "{scheme} missed a 1e4 corruption at ({row},{col}) on {shape}"
        );
    }
}

/// Protection never changes the computed product.
#[test]
fn schemes_do_not_perturb_results() {
    let mut rng = Rng64::seed_from_u64(0x5EED_0003);
    for _ in 0..24 {
        let shape = random_shape(&mut rng);
        let scheme = random_protected_scheme(&mut rng);
        let seed = rng.range_u64(0, 100);
        let clean = ProtectedGemm::random(shape, Scheme::Unprotected, seed).run();
        let protected = ProtectedGemm::random(shape, scheme, seed).run();
        assert_eq!(clean.output.c, protected.output.c, "{scheme} on {shape}");
    }
}

/// The functional engine agrees with the FP64 reference within FP32
/// accumulation error for arbitrary shapes and tilings.
#[test]
fn engine_matches_reference() {
    let mut rng = Rng64::seed_from_u64(0x5EED_0004);
    for _ in 0..24 {
        let (m, n, k) = (
            rng.range_u64(1, 40),
            rng.range_u64(1, 40),
            rng.range_u64(1, 64),
        );
        let shape = GemmShape::new(m, n, k);
        let tiling = TilingConfig::candidates()[rng.range_usize(0, 3)];
        let seed = rng.range_u64(0, 100);
        let a = Matrix::random(m as usize, k as usize, seed);
        let b = Matrix::random(k as usize, n as usize, seed + 1);
        let out = GemmEngine::new(shape, tiling).run(&a, &b, || NoScheme, None);
        let reference = aiga::gpu::engine::gemm_reference_f64(&a, &b);
        for (i, (&got, &want)) in out.c.iter().zip(&reference).enumerate() {
            let err = (got as f64 - want).abs();
            let bound = 1e-5 * (k as f64) * 4.0 + 1e-6;
            assert!(err < bound, "elem {i}: {got} vs {want} (k={k})");
        }
    }
}

/// Workspace pooling is transparent: a seeded sweep of random shapes
/// and schemes through ONE reused workspace (the serving pool regime)
/// produces byte-identical outputs and verdicts to fresh-workspace and
/// allocating-path execution, clean and faulted.
#[test]
fn pooled_workspace_sweep_matches_fresh_execution() {
    let mut rng = Rng64::seed_from_u64(0x5EED_0006);
    let mut pooled = Workspace::new();
    for _ in 0..32 {
        let shape = random_shape(&mut rng);
        let scheme = random_protected_scheme(&mut rng);
        let seed = rng.range_u64(0, 500);
        let g = ProtectedGemm::random(shape, scheme, seed);
        let faults = if rng.gen_bool(0.5) {
            vec![FaultPlan {
                row: rng.range_u64(0, shape.m) as usize,
                col: rng.range_u64(0, shape.n) as usize,
                after_step: u64::MAX,
                kind: FaultKind::AddValue(1.0e3),
            }]
        } else {
            Vec::new()
        };
        let owned = g.run_with(&faults);
        let pooled_verdict = g.run_into(&faults, &mut pooled);
        let mut fresh = Workspace::new();
        let fresh_verdict = g.run_into(&faults, &mut fresh);
        let owned_bits: Vec<u32> = owned.output.c.iter().map(|v| v.to_bits()).collect();
        let pooled_bits: Vec<u32> = pooled.output().c.iter().map(|v| v.to_bits()).collect();
        let fresh_bits: Vec<u32> = fresh.output().c.iter().map(|v| v.to_bits()).collect();
        assert_eq!(owned_bits, pooled_bits, "{scheme} on {shape} (seed {seed})");
        assert_eq!(owned_bits, fresh_bits, "{scheme} on {shape} (seed {seed})");
        assert_eq!(
            owned.verdict.is_detected(),
            pooled_verdict.is_detected(),
            "{scheme} on {shape}"
        );
        assert_eq!(pooled_verdict.is_detected(), fresh_verdict.is_detected());
    }
}

/// Verdict classification is consistent: a detected verdict always
/// carries residual > threshold.
#[test]
fn detected_verdicts_carry_consistent_evidence() {
    let mut rng = Rng64::seed_from_u64(0x5EED_0005);
    for _ in 0..32 {
        let shape = random_shape(&mut rng);
        let scheme = random_protected_scheme(&mut rng);
        let bit = rng.range_u64(24, 31) as u8;
        let fault = FaultPlan {
            row: 0,
            col: 0,
            after_step: u64::MAX,
            kind: FaultKind::BitFlip(bit),
        };
        let report = ProtectedGemm::random(shape, scheme, 17)
            .with_fault(fault)
            .run();
        if let Verdict::Detected {
            residual,
            threshold,
        } = report.verdict
        {
            assert!(residual > threshold);
            assert!(residual.is_finite() || matches!(scheme, Scheme::ReplicationTraditional));
        }
    }
}
