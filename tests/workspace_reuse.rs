//! Workspace-reuse correctness: executing through one long-lived
//! (dirty) workspace must be byte-identical to executing through fresh
//! workspaces and to the allocating convenience paths, at every layer
//! of the stack — engine, pipeline, and serving session.

use aiga::prelude::*;

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn pipeline_reports_are_identical_across_workspace_regimes() {
    let model = zoo::dlrm_mlp_bottom(16);
    let input = Matrix::random(16, 13, 4242);
    let fault = PipelineFault {
        layer: 1,
        fault: FaultPlan {
            row: 3,
            col: 100,
            after_step: 2,
            kind: FaultKind::AddValue(40.0),
        },
    };
    for scheme in [Scheme::GlobalAbft, Scheme::ThreadLevelOneSided] {
        let p = ProtectedPipeline::uniform(&model, scheme, 2);
        let mut shared = Workspace::new();
        for fault in [None, Some(fault)] {
            // Same request served three ways: allocating convenience,
            // fresh workspace, and a workspace dirtied by prior runs.
            let convenience = p.infer(&input, fault);
            let fresh = p.infer_into(&input, fault, &mut Workspace::new());
            let reused_once = p.infer_into(&input, fault, &mut shared);
            let reused_again = p.infer_into(&input, fault, &mut shared);
            for other in [&fresh, &reused_once, &reused_again] {
                assert_eq!(
                    bits(&convenience.output),
                    bits(&other.output),
                    "{scheme} output drifted across workspace regimes"
                );
                assert_eq!(
                    convenience.detections.len(),
                    other.detections.len(),
                    "{scheme} detections drifted"
                );
            }
        }
    }
}

#[test]
fn session_serves_identically_from_cold_and_warm_workspaces() {
    let make_session = || {
        Session::builder(
            Planner::new(DeviceSpec::t4()),
            "dlrm-mlp-bottom",
            zoo::dlrm_mlp_bottom,
        )
        .buckets([8, 32])
        .seed(7)
        .build()
    };
    let warm = make_session();
    // Dirty the pooled workspace with requests of several shapes.
    for (rows, seed) in [(32usize, 1u64), (3, 2), (20, 3), (70, 4)] {
        warm.serve(&Matrix::random(rows, 13, seed)).unwrap();
    }
    for (rows, seed) in [(1usize, 100u64), (8, 101), (9, 102), (32, 103), (50, 104)] {
        let req = Matrix::random(rows, 13, seed);
        let from_warm = warm.serve(&req).unwrap();
        let from_cold = make_session().serve(&req).unwrap();
        assert_eq!(
            bits(&from_warm.report.output),
            bits(&from_cold.report.output),
            "rows={rows}: warm pool diverged from cold session"
        );
        assert_eq!(from_warm.report.output.len(), rows * 64);
    }
}
