//! End-to-end exercise of the redesigned API: plan with `Planner`,
//! serialize the plan to JSON, reload it, and serve a request through a
//! `Session` — verifying that serialized, reloaded, and served scheme
//! choices all agree.

use aiga::prelude::*;

#[test]
fn plans_round_trip_through_json() {
    // Planning is analytical, so large batches are cheap here.
    let planner = Planner::new(DeviceSpec::t4());
    let deployment = planner.deployment(&[8, 2048], zoo::dlrm_mlp_top);

    for (bucket, plan) in deployment.variants() {
        let text = plan.to_json();
        let reloaded = ModelPlan::from_json(&text).expect("plan reloads");
        assert_eq!(reloaded.model, plan.model);
        assert_eq!(reloaded.chosen_schemes(), plan.chosen_schemes());
        assert_eq!(
            reloaded.intensity_guided_s().to_bits(),
            plan.intensity_guided_s().to_bits(),
            "bucket {bucket}"
        );
    }

    // The batch-8 and batch-2048 MLP-Top plans genuinely differ (§7.3),
    // so the round-trip equality above is not vacuous.
    assert_ne!(
        deployment.plan_exact(8).unwrap().chosen_schemes(),
        deployment.plan_exact(2048).unwrap().chosen_schemes()
    );
}

#[test]
fn session_serves_with_the_reloaded_plans_choices() {
    let planner = Planner::new(DeviceSpec::t4());
    let session = Session::builder(planner.clone(), "dlrm-mlp-top", zoo::dlrm_mlp_top)
        .buckets([8, 32])
        .seed(5)
        .build();

    for (bucket, rows) in [(8u64, 5usize), (32, 20)] {
        // An operator ships the serialized plan to a serving host; the
        // session's live choices must match it.
        let shipped = planner.plan(&zoo::dlrm_mlp_top(bucket)).to_json();
        let reloaded = ModelPlan::from_json(&shipped).unwrap();

        let reply = session
            .serve(&Matrix::random(rows, 512, 1000 + bucket))
            .expect("request fits a declared bucket");
        assert_eq!(reply.bucket, bucket);
        assert_eq!(
            reply.schemes[..],
            reloaded.chosen_schemes()[..],
            "served schemes must match the serialized plan for bucket {bucket}"
        );
        assert!(!reply.report.fault_detected());
        assert_eq!(reply.report.output.len(), rows);
    }

    let stats = session.stats();
    assert_eq!(stats.requests, 2);
    assert_eq!(stats.plan_builds, 2);
}

#[test]
fn scheme_ids_round_trip_through_strings() {
    let mut all = vec![
        Scheme::Unprotected,
        Scheme::MultiChecksum(2),
        Scheme::MultiChecksum(17),
    ];
    all.extend(Scheme::all_protected());
    for scheme in all {
        let id = scheme.to_string();
        assert_eq!(id.parse::<Scheme>().unwrap(), scheme, "{id}");
        // Ids are kebab-case and stable for CLI use.
        assert!(id
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
    }
    assert!("three-sided-abft".parse::<Scheme>().is_err());
    assert!("multi-checksum-0".parse::<Scheme>().is_err());
    assert_eq!(
        " Global-ABFT ".parse::<Scheme>().unwrap(),
        Scheme::GlobalAbft
    );
}
