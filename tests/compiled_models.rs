//! End-to-end tests for the model-compilation path
//! (`Model → ModelPlan → CompiledModel`): executable zoo networks with
//! real FP16 weights, convolutions lowered through workspace-threaded
//! im2col onto the protected GEMM engine, served through `Session` and
//! the concurrent `Server`.
//!
//! The correctness oracle is `Network::reference_f64`, which mirrors
//! the executor's FP16 quantization points exactly and differs only in
//! accumulating GEMMs in f64 instead of the engine's f32 — so "matches
//! within FP16 tolerance" is a tight assertion, not a hand-wave.

use aiga::prelude::*;
use aiga_nn::graph::NetworkBuilder;
use std::time::Duration;

/// |got − want| ≤ atol + rtol·|want|, element-wise.
fn assert_close(got: &[f32], want: &[f64], atol: f64, rtol: f64, what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
        let err = (g as f64 - w).abs();
        assert!(
            err <= atol + rtol * w.abs(),
            "{what}: elem {i}: got {g}, want {w} (err {err:.3e})"
        );
    }
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// A single-conv network over `c_in × 13 × 11` inputs.
fn single_conv(
    batch: usize,
    c_in: usize,
    c_out: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
) -> Network {
    let mut b = NetworkBuilder::new(
        format!("conv-k{kernel}s{stride}p{padding}"),
        batch,
        c_in,
        13,
        11,
        90 + kernel as u64,
    );
    b.conv("conv", c_out, kernel, stride, padding, false);
    b.build()
}

#[test]
fn compiled_conv_layers_match_the_reference_across_zoo_shapes() {
    // Kernel/stride/padding shapes drawn from the zoo: SqueezeNet's 7×7
    // stem, ResNet's strided 3×3, 1×1 squeeze/expand convs, AlexNet's
    // 11×11 stride-4 stem, and a depthwise-ish single-input-channel
    // edge case.
    let cases: [(usize, usize, usize, usize, usize); 6] = [
        (3, 8, 7, 2, 0),  // SqueezeNet features.0
        (4, 6, 3, 2, 1),  // ResNet conv2, stage entry
        (5, 9, 1, 1, 0),  // 1×1 squeeze/expand/projection
        (3, 4, 11, 4, 2), // AlexNet features.0
        (1, 5, 3, 1, 1),  // depthwise-ish: one input channel
        (2, 4, 5, 2, 2),  // generic 5×5
    ];
    for (c_in, c_out, kernel, stride, padding) in cases {
        let net = single_conv(2, c_in, c_out, kernel, stride, padding);
        let compiled = Planner::new(DeviceSpec::t4()).compile(&net);
        let input = Matrix::random(2, net.input_features(), 7 * kernel as u64 + stride as u64);
        let report = compiled.infer(&input, None);
        assert!(!report.fault_detected(), "{}", net.name);
        let want = net.reference_f64(&input);
        assert_close(&report.output, &want, 2e-2, 2e-2, &net.name);
    }
}

#[test]
fn conv_faults_are_detected_under_every_scheme() {
    // End-to-end fault detection on a conv layer: the fault lands in
    // the lowered GEMM's output (row = output position, col = channel)
    // and every protected scheme must flag it; the unprotected baseline
    // must not.
    let net = single_conv(2, 3, 8, 3, 1, 1);
    let fault = PipelineFault {
        layer: 0,
        fault: FaultPlan {
            row: 17,
            col: 5,
            after_step: u64::MAX,
            kind: FaultKind::AddValue(500.0),
        },
    };
    for scheme in Scheme::all_protected() {
        let p = aiga_core::ProtectedPipeline::compile(&net, &[scheme]);
        let clean = p.infer(&Matrix::random(2, net.input_features(), 31), None);
        assert!(!clean.fault_detected(), "{scheme}: false positive");
        let dirty = p.infer(&Matrix::random(2, net.input_features(), 31), Some(fault));
        assert!(dirty.fault_detected(), "{scheme}: missed conv fault");
        assert_eq!(dirty.detections[0].layer, 0);
        assert_eq!(dirty.detections[0].scheme, scheme);
    }
    let unprot = aiga_core::ProtectedPipeline::compile(&net, &[Scheme::Unprotected]);
    let dirty = unprot.infer(&Matrix::random(2, net.input_features(), 31), Some(fault));
    assert!(!dirty.fault_detected(), "unprotected must stay silent");
}

#[test]
fn squeezenet_serves_end_to_end_matching_the_reference() {
    // Full executable SqueezeNet (stem + 8 Fire modules + conv
    // classifier + GAP) at a trimmed 32×32 resolution, through the
    // session's bucket/pad/crop path.
    let session = Session::builder_network(Planner::new(DeviceSpec::t4()), "squeezenet", |b| {
        zoo::squeezenet_net(b, 32, 32, 7)
    })
    .buckets([4])
    .build();
    let net = zoo::squeezenet_net(4, 32, 32, 7);
    assert_eq!(net.gemm_count(), 26);

    // A partial batch: served padded, cropped back to 3 images.
    let input = Matrix::random(3, net.input_features(), 123);
    let reply = session.serve(&input).unwrap();
    assert_eq!(reply.bucket, 4);
    assert_eq!(reply.rows, 3);
    assert_eq!(reply.report.output.len(), 3 * 1000);
    assert!(!reply.report.fault_detected());
    assert_eq!(reply.schemes.len(), 26);

    let want = net.reference_f64(&input);
    // 26 layers deep: f32-vs-f64 accumulation and straddled FP16
    // roundings compound, so the tolerance is wider than single-layer
    // but still FP16-scale.
    assert_close(&reply.report.output, &want, 4e-2, 4e-2, "SqueezeNet");

    // The per-layer plan really mixes decisions on real conv shapes.
    let plan = session.plan_for_bucket(4);
    assert_eq!(plan.layers.len(), 26);
    assert_eq!(reply.schemes[..], plan.chosen_schemes()[..]);
}

/// A DLRM request matrix: 13 random dense features followed by exact
/// integer categorical indices (representable losslessly in fp16).
fn dlrm_input(batch: usize, tables: usize, rows_per_table: usize, seed: u64) -> Matrix {
    let base = Matrix::random(batch, 13 + tables, seed);
    Matrix::from_fn(batch, 13 + tables, |r, c| {
        if c < 13 {
            base.get(r, c)
        } else {
            aiga_fp16::F16::from_f32(((r * 31 + c * 17) % rows_per_table) as f32)
        }
    })
}

#[test]
fn dlrm_net_matches_the_reference_end_to_end() {
    // The full DLRM graph: slice → MLP-Bottom, slice → embedding bags,
    // pairwise interaction, MLP-Top. The non-GEMM ops (slice, gather,
    // interaction) run as epilogue stages and must track the f64
    // reference through both MLPs.
    let net = zoo::dlrm_net(3, 4, 50, 16, 11);
    let p = aiga_core::ProtectedPipeline::compile(&net, &[Scheme::GlobalAbft; 6]);
    let input = dlrm_input(3, 4, 50, 201);
    let r = p.infer(&input, None);
    assert!(!r.fault_detected());
    assert_eq!(r.output.len(), 3);
    let want = net.reference_f64(&input);
    assert_close(&r.output, &want, 2e-2, 2e-2, "DLRM");
}

#[test]
fn dlrm_faults_are_detected_at_every_layer_under_every_scheme() {
    // Detection coverage through the branch-and-merge DLRM graph: a
    // fault aimed at each of the six GEMMs (both MLPs) must surface at
    // that layer under every protected scheme, even with the slice /
    // embedding / interaction epilogues between them.
    let net = zoo::dlrm_net(2, 4, 50, 16, 13);
    let input = dlrm_input(2, 4, 50, 77);
    for scheme in Scheme::all_protected() {
        let p = aiga_core::ProtectedPipeline::compile(&net, &[scheme; 6]);
        for layer in 0..6 {
            let fault = PipelineFault {
                layer,
                fault: FaultPlan {
                    row: 0,
                    col: 0,
                    after_step: u64::MAX,
                    kind: FaultKind::AddValue(500.0),
                },
            };
            let dirty = p.infer(&input, Some(fault));
            assert!(dirty.fault_detected(), "{scheme}: missed fault at {layer}");
            assert_eq!(dirty.detections[0].layer, layer, "{scheme}");
        }
    }
}

#[test]
fn squeezenet_v11_matches_the_reference_end_to_end() {
    // SqueezeNet 1.1's early-pool topology at a trimmed 48×48: the
    // stem's 3×3 stride-2 conv and all three ceil-mode pools land at
    // distinct spatial extents (23 → 11 → 5 → 2).
    let net = zoo::squeezenet_v11_net(2, 48, 48, 9);
    assert_eq!(net.gemm_count(), 26);
    let p = aiga_core::ProtectedPipeline::compile(&net, &[Scheme::ThreadLevelOneSided; 26]);
    let input = Matrix::random(2, net.input_features(), 55);
    let r = p.infer(&input, None);
    assert!(!r.fault_detected());
    let want = net.reference_f64(&input);
    assert_close(&r.output, &want, 4e-2, 4e-2, "SqueezeNet-1.1");
}

#[test]
fn squeezenet_v11_faults_are_detected_per_scheme_family() {
    // One scheme per family, faults aimed at the stem, a mid-net fire
    // expand (inside a branch-parallel-eligible level), and the
    // classifier conv.
    let net = zoo::squeezenet_v11_net(1, 48, 48, 9);
    let input = Matrix::random(1, net.input_features(), 56);
    for scheme in [
        Scheme::GlobalAbft,
        Scheme::ThreadLevelOneSided,
        Scheme::ThreadLevelTwoSided,
        Scheme::MultiChecksum(2),
    ] {
        let p = aiga_core::ProtectedPipeline::compile(&net, &[scheme; 26]);
        for layer in [0usize, 13, 25] {
            let fault = PipelineFault {
                layer,
                fault: FaultPlan {
                    row: 0,
                    col: 0,
                    after_step: u64::MAX,
                    kind: FaultKind::AddValue(400.0),
                },
            };
            let dirty = p.infer(&input, Some(fault));
            assert!(dirty.fault_detected(), "{scheme}: missed fault at {layer}");
            assert_eq!(dirty.detections[0].layer, layer, "{scheme}");
        }
    }
}

#[test]
fn vgg11_matches_the_reference_end_to_end() {
    // VGG-11 at 32×32: eight convs pool down to 1×1 before the
    // 4096-wide classifier chain — the deepest fc stack in the zoo.
    let net = zoo::vgg11_net(1, 32, 32, 21);
    assert_eq!(net.gemm_count(), 11);
    let p = aiga_core::ProtectedPipeline::compile(&net, &[Scheme::GlobalAbft; 11]);
    let input = Matrix::random(1, net.input_features(), 99);
    let r = p.infer(&input, None);
    assert!(!r.fault_detected());
    let want = net.reference_f64(&input);
    assert_close(&r.output, &want, 4e-2, 4e-2, "VGG-11");
}

#[test]
fn vgg11_faults_are_detected_in_conv_and_fc_layers() {
    let net = zoo::vgg11_net(1, 32, 32, 21);
    let input = Matrix::random(1, net.input_features(), 98);
    for scheme in [Scheme::ThreadLevelOneSided, Scheme::MultiChecksum(2)] {
        let p = aiga_core::ProtectedPipeline::compile(&net, &[scheme; 11]);
        for layer in [3usize, 9] {
            // a mid conv and a 4096-wide fc
            let fault = PipelineFault {
                layer,
                fault: FaultPlan {
                    row: 0,
                    col: 1,
                    after_step: u64::MAX,
                    kind: FaultKind::AddValue(400.0),
                },
            };
            let dirty = p.infer(&input, Some(fault));
            assert!(dirty.fault_detected(), "{scheme}: missed fault at {layer}");
            assert_eq!(dirty.detections[0].layer, layer, "{scheme}");
        }
    }
}

#[test]
fn resnet_block_serves_end_to_end_matching_the_reference() {
    let session = Session::builder_network(Planner::new(DeviceSpec::t4()), "resnet-block", |b| {
        zoo::resnet_block_net(b, 16, 16, 11)
    })
    .buckets([2, 4])
    .build();
    let net = zoo::resnet_block_net(4, 16, 16, 11);
    let input = Matrix::random(4, net.input_features(), 321);
    let reply = session.serve(&input).unwrap();
    assert_eq!(reply.bucket, 4);
    assert_eq!(reply.report.output.len(), 4 * 10);
    let want = net.reference_f64(&input);
    assert_close(&reply.report.output, &want, 2e-2, 2e-2, "ResNet block");

    // Detection survives the full conv → residual-add → fc graph: aim a
    // fault at the strided 3×3 (layer index 1 in plan order).
    let fault = PipelineFault {
        layer: 1,
        fault: FaultPlan {
            row: 9,
            col: 3,
            after_step: u64::MAX,
            kind: FaultKind::AddValue(300.0),
        },
    };
    let dirty = session.serve_with_fault(&input, Some(fault)).unwrap();
    assert!(dirty.report.fault_detected());
    assert_eq!(dirty.report.detections[0].name, "block.conv2");
    assert_eq!(session.stats().faulty_requests, 1);
}

#[test]
fn oversized_compiled_requests_split_like_mlp_ones() {
    let session = Session::builder_network(Planner::new(DeviceSpec::t4()), "resnet-block", |b| {
        zoo::resnet_block_net(b, 8, 8, 5)
    })
    .buckets([2])
    .build();
    let features = 16 * 8 * 8;
    let big = Matrix::random(5, features, 77);
    let r = session.serve(&big).unwrap();
    assert_eq!(r.rows, 5);
    assert_eq!(r.report.output.len(), 5 * 10);
    assert_eq!(session.stats().split_requests, 1);
    // Each chunk equals serving it alone (per-image independence).
    for (start, rows) in [(0usize, 2usize), (2, 2), (4, 1)] {
        let chunk = big.row_block(start, rows);
        let rc = session.serve(&chunk).unwrap();
        assert_eq!(
            bits(&rc.report.output),
            bits(&r.report.output[start * 10..(start + rows) * 10]),
            "chunk at {start}"
        );
    }
}

#[test]
fn coalesced_compiled_serving_is_byte_identical_to_solo() {
    // Concurrent clients over a compiled ResNet block: whatever batches
    // the dynamic batcher forms, reply bytes must equal a direct
    // single-caller serve of the same request.
    let make_session = || {
        Session::builder_network(Planner::new(DeviceSpec::t4()), "resnet-block", |b| {
            zoo::resnet_block_net(b, 8, 8, 9)
        })
        .buckets([4])
        .build()
    };
    let server = Server::builder(make_session())
        .workers(2)
        .queue_capacity(32)
        .coalesce_window(Duration::from_micros(300))
        .build();
    let reference = make_session();
    let features = 16 * 8 * 8;

    const CLIENTS: usize = 3;
    const PER_CLIENT: usize = 3;
    let replies: Vec<(Matrix, ServeReport)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let client = server.client();
                scope.spawn(move || {
                    (0..PER_CLIENT)
                        .map(|i| {
                            let rows = 1 + (c + i) % 2;
                            let input =
                                Matrix::random(rows, features, 500 + (c * PER_CLIENT + i) as u64);
                            let reply = client.submit(&input).unwrap().wait().unwrap();
                            (input, reply)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });

    for (input, reply) in &replies {
        assert_eq!(reply.rows, input.rows);
        let direct = reference.serve(input).unwrap();
        assert_eq!(
            bits(&reply.report.output),
            bits(&direct.report.output),
            "coalesced compiled reply diverged from solo serve"
        );
    }
    let stats = server.shutdown();
    assert_eq!(stats.completed, (CLIENTS * PER_CLIENT) as u64);
    assert_eq!(stats.failed + stats.rejected, 0);
}
