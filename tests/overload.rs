//! Overload robustness: SLO-aware shedding, graceful degradation, and
//! worker self-healing through `aiga::serve`.
//!
//! The server's overload pipeline is admission → age check → degrade →
//! shed → scatter: past `degrade_after` pending work runs one scheme
//! rung cheaper (identical output bytes — schemes compute checksums
//! beside the GEMM, never in it), past `shed_after` requests resolve
//! with an explicit `Overloaded` instead of aging without bound, and a
//! panicked worker is respawned by the supervisor while its in-flight
//! handles resolve to `Aborted`. These tests pin each stage: sheds
//! resolve promptly, degraded replies stay byte-identical to solo
//! serving, cancellation reclaims the batch slot, and a killed worker
//! never takes the server down with it.

use aiga::core::adapt::weaker;
use aiga::prelude::*;
use std::time::{Duration, Instant};

fn session() -> Session {
    Session::builder(
        Planner::new(DeviceSpec::t4()),
        "dlrm-mlp-bottom",
        zoo::dlrm_mlp_bottom,
    )
    .buckets([8, 32])
    .seed(7)
    .build()
}

/// A request large enough to pin a single worker for a while: 160 rows
/// over a largest bucket of 32 splits into five chunked passes.
fn plug(client: &Client) -> Pending {
    client.submit(&Matrix::random(160, 13, 4242)).unwrap()
}

#[test]
fn overaged_queues_shed_promptly_with_overloaded() {
    let shed_after = Duration::from_millis(20);
    let server = Server::builder(session())
        .workers(1)
        .shed_after(shed_after)
        .build();
    let client = server.client();

    // Pin the worker, then let one queued request age past the shed
    // threshold.
    let plugged = plug(&client);
    let victim = client.submit(&Matrix::random(4, 13, 1)).unwrap();
    std::thread::sleep(shed_after + Duration::from_millis(10));

    // Admission-time shed: the queue head is already over-age, so the
    // submission is turned away immediately — not after queueing.
    let started = Instant::now();
    let err = client.submit(&Matrix::random(4, 13, 2)).unwrap_err();
    assert!(
        started.elapsed() < Duration::from_secs(1),
        "shed must resolve promptly, took {:?}",
        started.elapsed()
    );
    let ServeError::Overloaded { queue_age } = err else {
        panic!("expected Overloaded, got {err:?}");
    };
    assert!(queue_age >= shed_after, "queue age {queue_age:?}");

    // High priority is exempt from age-based shedding: admitted now,
    // served once the worker frees up.
    let high = client
        .submit_with_slo(
            &Matrix::random(4, 13, 3),
            Slo {
                deadline: None,
                priority: Priority::High,
            },
        )
        .unwrap();

    // The aged victim is shed by worker triage when it reaches the
    // queue head.
    let err = victim.wait().unwrap_err();
    let ServeError::Overloaded { queue_age } = err else {
        panic!("expected Overloaded, got {err:?}");
    };
    assert!(queue_age >= shed_after);

    assert_eq!(plugged.wait().unwrap().rows, 160);
    assert_eq!(high.wait().unwrap().rows, 4);

    let stats = server.shutdown();
    assert_eq!(stats.shed, 2, "{stats:?}");
    assert_eq!(stats.completed, 2, "{stats:?}");
}

#[test]
fn requests_past_their_own_slo_deadline_are_shed() {
    let server = Server::builder(session()).workers(1).build();
    let client = server.client();
    let plugged = plug(&client);
    // Even without server-wide thresholds, a request's own deadline
    // sheds it — High priority included (it is the caller's budget).
    let stale = client
        .submit_with_slo(
            &Matrix::random(4, 13, 9),
            Slo {
                deadline: Some(Duration::from_millis(1)),
                priority: Priority::High,
            },
        )
        .unwrap();
    let err = stale.wait().unwrap_err();
    assert!(matches!(err, ServeError::Overloaded { .. }), "{err:?}");
    plugged.wait().unwrap();
    let stats = server.shutdown();
    assert_eq!(stats.shed, 1);
}

#[test]
fn degraded_replies_are_byte_identical_to_solo_serving() {
    // `degrade_after(0)` forces every pass onto the degraded entry —
    // deterministic, no timing. The reference session serves solo at
    // full strength.
    let reference = session();
    let server = Server::builder(session())
        .workers(1)
        .degrade_after(Duration::ZERO)
        .build();
    let client = server.client();

    let mut replies = Vec::new();
    for seed in 0..6u64 {
        let request = Matrix::random(3 + seed as usize * 5, 13, 100 + seed);
        let reply = client.submit(&request).unwrap().wait().unwrap();
        replies.push((request, reply));
    }
    for (request, reply) in &replies {
        let solo = reference.serve(request).unwrap();
        assert_eq!(
            solo.report.output, reply.report.output,
            "degradation must never change output bytes"
        );
        // Every layer runs one rung below the static plan (or stays on
        // the Unprotected floor with it).
        let planned = reference.plan_for_bucket(reply.bucket);
        let planned = planned.chosen_schemes();
        assert_eq!(reply.schemes.len(), planned.len());
        assert!(
            reply.schemes[..] != planned[..],
            "schemes should actually be degraded"
        );
        for (d, p) in reply.schemes.iter().zip(planned) {
            assert!(
                *d == p || weaker(p) == Some(*d),
                "degraded {d:?} vs planned {p:?}"
            );
        }
    }

    // High priority opts out of degradation entirely.
    let request = Matrix::random(8, 13, 777);
    let reply = client
        .submit_with_slo(
            &request,
            Slo {
                deadline: None,
                priority: Priority::High,
            },
        )
        .unwrap()
        .wait()
        .unwrap();
    let planned = reference.plan_for_bucket(8);
    assert_eq!(reply.schemes[..], planned.chosen_schemes()[..]);

    let stats = server.shutdown();
    assert_eq!(stats.degraded, replies.len() as u64, "{stats:?}");
    assert_eq!(stats.completed, replies.len() as u64 + 1);
    assert_eq!(stats.session.degraded_requests, replies.len() as u64);
    assert_eq!(stats.shed, 0);
}

#[test]
fn killed_workers_are_respawned_and_the_server_keeps_serving() {
    let server = Server::builder(session()).workers(1).build();
    let client = server.client();

    let before = client.submit(&Matrix::random(4, 13, 50)).unwrap();
    assert_eq!(before.wait().unwrap().rows, 4);

    // Chaos: the single worker panics on a poison request. Its handle
    // resolves to Aborted (never hangs) and the supervisor respawns a
    // fresh worker on a fresh session shard.
    let poisoned = client.inject_worker_panic().unwrap();
    assert_eq!(poisoned.wait().unwrap_err(), ServeError::Aborted);

    for seed in 0..3u64 {
        let reply = client
            .submit(&Matrix::random(4, 13, 60 + seed))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(reply.rows, 4);
    }

    let stats = server.shutdown();
    assert_eq!(stats.worker_restarts, 1, "{stats:?}");
    assert_eq!(stats.completed, 4);
}

#[test]
fn repeated_worker_kills_do_not_wedge_a_multiworker_server() {
    let server = Server::builder(session()).workers(2).build();
    let client = server.client();
    for round in 0..2u64 {
        client.inject_worker_panic().unwrap();
        let reply = client
            .submit(&Matrix::random(4, 13, 80 + round))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(reply.rows, 4);
    }
    let stats = server.shutdown();
    assert_eq!(stats.worker_restarts, 2, "{stats:?}");
    assert_eq!(stats.completed, 2);
}

#[test]
fn cancel_reclaims_the_batch_slot_before_a_worker_reaches_it() {
    let server = Server::builder(session()).workers(1).build();
    let client = server.client();
    let plugged = plug(&client);
    let doomed = client.submit(&Matrix::random(4, 13, 30)).unwrap();
    assert!(doomed.cancel(), "no result yet: cancel registers");
    let err = doomed.wait().unwrap_err();
    assert_eq!(err, ServeError::Cancelled);
    plugged.wait().unwrap();

    // Cancelling after the result arrived is a no-op.
    let done = client.submit(&Matrix::random(4, 13, 31)).unwrap();
    while !done.is_ready() {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(!done.cancel());
    assert_eq!(done.wait().unwrap().rows, 4);

    let stats = server.shutdown();
    assert_eq!(stats.cancelled, 1, "{stats:?}");
    assert_eq!(stats.completed, 2);
}

#[test]
fn retry_policy_bounds_attempts_and_counts_per_bucket() {
    let fault = PipelineFault {
        layer: 1,
        fault: FaultPlan {
            row: 2,
            col: 50,
            after_step: 4,
            kind: FaultKind::AddValue(50.0),
        },
    };
    let server = Server::builder(session())
        .workers(1)
        .retry_policy(3, Duration::from_micros(100))
        .build();
    let reply = server
        .client()
        .submit_with_fault(&Matrix::random(8, 13, 70), Some(fault))
        .unwrap()
        .wait()
        .unwrap();
    // The injected fault is transient: the first bounded retry is
    // already clean, so exactly one attempt is spent.
    assert!(!reply.report.fault_detected(), "retry hid the fault");
    let stats = server.shutdown();
    assert_eq!(stats.retries, 1, "{stats:?}");
    assert_eq!(stats.retry_attempts_by_bucket, vec![(8, 1)]);
}

#[test]
fn saturation_burst_resolves_every_handle_and_keeps_accepted_bytes_exact() {
    // Offer load past a single worker's capacity with both thresholds
    // armed: accepted requests must come back byte-identical to solo
    // serving (degraded or not), shed requests must resolve with
    // Overloaded, and the books must balance.
    let reference = session();
    let server = Server::builder(session())
        .workers(1)
        .queue_capacity(64)
        .degrade_after(Duration::from_millis(5))
        .shed_after(Duration::from_millis(120))
        .build();

    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 6;
    let outcomes: Vec<(Matrix, Result<ServeReport, ServeError>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let client = server.client();
                scope.spawn(move || {
                    let mut out = Vec::new();
                    for i in 0..PER_CLIENT {
                        let rows = 1 + (c + i * CLIENTS) % 8;
                        let request = Matrix::random(rows, 13, (c * PER_CLIENT + i) as u64);
                        let outcome = match client.submit(&request) {
                            Ok(pending) => pending.wait(),
                            Err(e) => Err(e),
                        };
                        out.push((request, outcome));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });

    let mut completed = 0u64;
    let mut shed = 0u64;
    for (request, outcome) in &outcomes {
        match outcome {
            Ok(reply) => {
                completed += 1;
                let solo = reference.serve(request).unwrap();
                assert_eq!(
                    solo.report.output, reply.report.output,
                    "accepted replies are byte-identical to solo serving"
                );
            }
            Err(ServeError::Overloaded { queue_age }) => {
                shed += 1;
                assert!(*queue_age >= Duration::from_millis(5));
            }
            Err(e) => panic!("unexpected outcome: {e:?}"),
        }
    }
    assert_eq!(completed + shed, (CLIENTS * PER_CLIENT) as u64);
    let stats = server.shutdown();
    assert_eq!(stats.completed, completed, "{stats:?}");
    assert_eq!(stats.shed, shed, "{stats:?}");
    assert!(completed > 0, "some requests must get through");
}
