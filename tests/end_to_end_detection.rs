//! Cross-crate integration: fault detection end to end, from the fault
//! model through the engine, the schemes, and the pipeline.

use aiga::core::pipeline::{PipelineFault, ProtectedPipeline};
use aiga::core::{Planner, ProtectedGemm, Scheme};
use aiga::gpu::engine::{FaultKind, FaultPlan, Matrix};
use aiga::gpu::{DeviceSpec, GemmShape};
use aiga::nn::zoo;

/// Every protected scheme detects an exponent-bit corruption at every
/// strike time (early, middle, late, epilogue).
#[test]
fn all_schemes_detect_exponent_flips_at_all_strike_times() {
    let shape = GemmShape::new(48, 48, 64);
    for scheme in Scheme::all_protected() {
        for after_step in [0u64, 15, 31, u64::MAX] {
            let fault = FaultPlan {
                row: 11,
                col: 23,
                after_step,
                kind: FaultKind::BitFlip(30),
            };
            let report = ProtectedGemm::random(shape, scheme, 3)
                .with_fault(fault)
                .run();
            assert!(
                report.verdict.is_detected(),
                "{scheme} missed a bit-30 flip at step {after_step}"
            );
        }
    }
}

/// No scheme false-positives across a spread of shapes and seeds.
#[test]
fn no_false_positives_across_shapes_and_seeds() {
    for shape in [
        GemmShape::new(16, 16, 16),
        GemmShape::new(33, 17, 55), // unaligned
        GemmShape::new(8, 128, 64), // skinny
        GemmShape::new(128, 8, 64),
    ] {
        for scheme in Scheme::all_protected() {
            for seed in [1u64, 2, 3] {
                let report = ProtectedGemm::random(shape, scheme, seed).run();
                assert!(
                    report.verdict.is_clean(),
                    "{scheme} false positive on {shape} seed {seed}: {:?}",
                    report.verdict
                );
            }
        }
    }
}

/// The intensity-guided plan, applied to a real functional pipeline,
/// detects faults in every layer regardless of which scheme each layer
/// selected.
#[test]
fn intensity_guided_pipeline_catches_faults_in_every_layer() {
    let model = zoo::dlrm_mlp_bottom(32);
    let plan = Planner::new(DeviceSpec::t4()).plan(&model);
    let schemes: Vec<Scheme> = plan.chosen_schemes();
    let pipeline = ProtectedPipeline::new(&model, &schemes, 5);
    let input = Matrix::random(32, 13, 555);

    for layer in 0..pipeline.depth() {
        let report = pipeline.infer(
            &input,
            Some(PipelineFault {
                layer,
                fault: FaultPlan {
                    row: 2,
                    col: 3,
                    after_step: 1,
                    kind: FaultKind::AddValue(75.0),
                },
            }),
        );
        assert!(report.fault_detected(), "layer {layer} fault escaped");
        assert!(
            report.detections.iter().any(|d| d.layer == layer),
            "detection did not localize to layer {layer}"
        );
    }
}

/// A corrupted early layer changes the final output when unprotected —
/// the motivation for detection — and detection does not perturb the
/// math at all.
#[test]
fn protection_is_transparent_to_the_computed_result() {
    let model = zoo::dlrm_mlp_top(16);
    let input = Matrix::random(16, 512, 777);
    let unprotected =
        ProtectedPipeline::uniform(&model, Scheme::Unprotected, 9).infer(&input, None);
    for scheme in [Scheme::GlobalAbft, Scheme::ThreadLevelOneSided] {
        let protected = ProtectedPipeline::uniform(&model, scheme, 9).infer(&input, None);
        assert_eq!(
            protected.output, unprotected.output,
            "{scheme} altered the computation"
        );
    }
}
