//! Counting-allocator regression net for the *server* hot path.
//!
//! `tests/alloc_steadystate.rs` pins the single-caller serving path
//! (engine zero-alloc, `Session::serve` allocating only the report).
//! This file pins the concurrent front-end on top of it: after warmup,
//! one `submit → worker pass → wait` round trip allocates only the
//! queue-handoff constants — the input copy, the handle slot, and the
//! report — a small count that is *stable from request to request*,
//! independent of how many requests have been served.
//!
//! The file holds exactly one `#[test]` so nothing races the counter;
//! the server runs one worker, and the measured section spans the full
//! round trip (the worker's allocations land inside the window because
//! `wait()` joins the request's completion).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::SeqCst);
    f();
    ALLOCS.load(Ordering::SeqCst) - before
}

#[test]
fn steady_state_server_round_trip_allocates_a_small_stable_constant() {
    use aiga::prelude::*;

    let session = Session::builder(
        Planner::new(DeviceSpec::t4()),
        "dlrm-mlp-bottom",
        zoo::dlrm_mlp_bottom,
    )
    .buckets([8])
    .seed(7)
    .build();
    let server = Server::builder(session)
        .workers(1)
        .queue_capacity(8)
        .build();
    let client = server.client();
    let request = Matrix::random(8, 13, 42);

    // Warmup: build the bucket plan, warm the session workspace pool,
    // ratchet the queue and per-worker buffers to their high-water mark.
    for _ in 0..5 {
        client.submit(&request).unwrap().wait().unwrap();
    }

    let round = || {
        let reply = client.submit(&request).unwrap().wait().unwrap();
        std::hint::black_box(reply);
    };
    let first = allocs_during(round);
    let second = allocs_during(round);
    assert_eq!(
        first, second,
        "steady-state server round-trip allocation count must be stable"
    );
    assert!(
        first <= 16,
        "server round trip should allocate only the handoff constants \
         (input copy, handle, report) — saw {first}"
    );

    let stats = server.shutdown();
    assert_eq!(stats.completed, 7);
    assert_eq!(stats.failed + stats.rejected, 0);
}
