//! Concurrency tests for the `aiga::serve` front-end.
//!
//! The load-bearing guarantee is *coalescing transparency*: whatever
//! batch a request lands in, its reply bytes equal a direct
//! single-caller `Session::serve` of the same input. On top of that:
//! graceful shutdown drains every admitted request, and the bounded
//! queue delivers explicit backpressure (`QueueFull` fail-fast,
//! deadline-bounded submit).

use aiga::prelude::*;
use std::time::{Duration, Instant};

fn session(buckets: impl IntoIterator<Item = u64>) -> Session {
    Session::builder(
        Planner::new(DeviceSpec::t4()),
        "dlrm-mlp-bottom",
        zoo::dlrm_mlp_bottom,
    )
    .buckets(buckets)
    .seed(7)
    .build()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Spin until the admission queue is empty (the worker picked the head
/// up) so subsequent submissions race only against a *busy* worker.
fn wait_for_empty_queue(server: &Server) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.stats().queue_depth > 0 {
        assert!(Instant::now() < deadline, "queue never drained");
        std::thread::yield_now();
    }
}

#[test]
fn coalesced_outputs_are_byte_identical_to_direct_session_serve() {
    // A small coalesce window plus several clients per worker makes the
    // batcher actually coalesce; byte-identity must hold regardless of
    // which batches form.
    let server = Server::builder(session([8, 32]))
        .workers(2)
        .queue_capacity(64)
        .coalesce_window(Duration::from_micros(300))
        .build();
    let reference = session([8, 32]);

    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 6;
    let replies: Vec<(Matrix, ServeReport)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let client = server.client();
                scope.spawn(move || {
                    (0..PER_CLIENT)
                        .map(|i| {
                            let rows = 1 + (c * PER_CLIENT + i) % 8;
                            let input =
                                Matrix::random(rows, 13, 1000 + (c * PER_CLIENT + i) as u64);
                            let reply = client.submit(&input).unwrap().wait().unwrap();
                            (input, reply)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });

    assert_eq!(replies.len(), CLIENTS * PER_CLIENT);
    for (input, reply) in &replies {
        assert_eq!(reply.rows, input.rows);
        let direct = reference.serve(input).unwrap();
        assert_eq!(
            bits(&reply.report.output),
            bits(&direct.report.output),
            "coalesced reply for a {}-row request diverged from direct serve",
            input.rows
        );
        assert!(!reply.report.fault_detected());
    }

    let stats = server.shutdown();
    assert_eq!(stats.submitted, (CLIENTS * PER_CLIENT) as u64);
    assert_eq!(stats.completed, (CLIENTS * PER_CLIENT) as u64);
    assert_eq!(stats.failed + stats.rejected, 0);
    // Every pass is accounted for, coalesced or not.
    assert!(stats.batches <= stats.submitted);
    assert!(stats.p99_latency_ns >= stats.p50_latency_ns);
}

#[test]
fn queued_requests_coalesce_into_one_pass() {
    let server = Server::builder(session([8, 32]))
        .workers(1)
        .queue_capacity(16)
        .build();
    let client = server.client();
    let reference = session([8, 32]);

    // Occupy the single worker with a deliberately large request (split
    // into several bucket passes), then queue four small compatible
    // requests behind it. The worker must take all four in one pass.
    let giant_input = Matrix::random(256, 13, 1);
    let giant = client.submit(&giant_input).unwrap();
    wait_for_empty_queue(&server);
    let smalls: Vec<Matrix> = (0..4).map(|i| Matrix::random(4, 13, 10 + i)).collect();
    let pendings: Vec<Pending> = smalls.iter().map(|m| client.submit(m).unwrap()).collect();

    assert_eq!(giant.wait().unwrap().rows, 256);
    for (input, pending) in smalls.iter().zip(pendings) {
        let reply = pending.wait().unwrap();
        assert_eq!(reply.rows, 4);
        // 4×4 = 16 stacked rows dispatch to bucket 32; the reply bytes
        // still match a direct bucket-8 serve of the lone request.
        assert_eq!(reply.bucket, 32);
        let direct = reference.serve(input).unwrap();
        assert_eq!(direct.bucket, 8);
        assert_eq!(bits(&reply.report.output), bits(&direct.report.output));
    }

    let stats = server.shutdown();
    assert_eq!(stats.batches, 2, "giant pass + one coalesced pass");
    assert_eq!(stats.coalesced_requests, 4);
    assert_eq!(stats.max_batch_requests, 4);
    assert_eq!(stats.max_batch_rows, 256);
    assert_eq!(stats.completed, 5);
}

#[test]
fn shutdown_drains_every_admitted_request() {
    let server = Server::builder(session([8]))
        .workers(1)
        .queue_capacity(16)
        .build();
    let client = server.client();
    let inputs: Vec<Matrix> = (0..6).map(|i| Matrix::random(5, 13, 100 + i)).collect();
    let pendings: Vec<Pending> = inputs.iter().map(|m| client.submit(m).unwrap()).collect();

    // Shut down immediately: everything admitted must still be served.
    let stats = server.shutdown();
    assert_eq!(stats.submitted, 6);
    assert_eq!(stats.completed, 6);
    assert_eq!(stats.queue_depth, 0);

    let reference = session([8]);
    for (input, pending) in inputs.iter().zip(pendings) {
        let reply = pending.wait().unwrap();
        let direct = reference.serve(input).unwrap();
        assert_eq!(bits(&reply.report.output), bits(&direct.report.output));
    }

    // The door is closed for new traffic.
    assert_eq!(client.submit(&inputs[0]).unwrap_err(), ServeError::Shutdown);
}

#[test]
fn bounded_queue_applies_backpressure() {
    let server = Server::builder(session([8, 32]))
        .workers(1)
        .queue_capacity(2)
        .build();
    let client = server.client();

    // Keep the worker busy for a long time (16 bucket passes), then
    // fill the two queue slots while it grinds.
    let giant = client.submit(&Matrix::random(512, 13, 1)).unwrap();
    wait_for_empty_queue(&server);
    let q1 = client.try_submit(&Matrix::random(4, 13, 2)).unwrap();
    let q2 = client.try_submit(&Matrix::random(4, 13, 3)).unwrap();

    // Fail-fast policy: an immediate QueueFull, nothing admitted.
    assert_eq!(
        client.try_submit(&Matrix::random(4, 13, 4)).unwrap_err(),
        ServeError::QueueFull
    );
    // Deadline policy: bounded blocking, then SubmitTimeout.
    let t0 = Instant::now();
    assert_eq!(
        client
            .submit_timeout(&Matrix::random(4, 13, 5), Duration::from_millis(20))
            .unwrap_err(),
        ServeError::SubmitTimeout
    );
    assert!(t0.elapsed() >= Duration::from_millis(20));

    // The admitted requests all complete.
    assert_eq!(giant.wait().unwrap().rows, 512);
    assert_eq!(q1.wait().unwrap().rows, 4);
    assert_eq!(q2.wait().unwrap().rows, 4);

    let stats = server.shutdown();
    assert_eq!(stats.submitted, 3);
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.rejected, 2);
    assert_eq!(stats.max_queue_depth, 2);
}

#[test]
fn faulted_requests_run_solo_and_detect() {
    let server = Server::builder(session([8, 32]))
        .workers(1)
        .queue_capacity(8)
        .build();
    let client = server.client();
    let fault = PipelineFault {
        layer: 1,
        fault: FaultPlan {
            row: 2,
            col: 50,
            after_step: 4,
            kind: FaultKind::AddValue(50.0),
        },
    };
    let clean = client.submit(&Matrix::random(4, 13, 7)).unwrap();
    let faulty = client
        .submit_with_fault(&Matrix::random(8, 13, 8), Some(fault))
        .unwrap();
    assert!(!clean.wait().unwrap().report.fault_detected());
    assert!(faulty.wait().unwrap().report.fault_detected());

    let stats = server.shutdown();
    assert_eq!(stats.completed, 2);
    // The faulted request never shares a pass.
    assert_eq!(stats.coalesced_requests, 0);
    assert_eq!(stats.session.faulty_requests, 1);
}
