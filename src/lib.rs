//! # aiga — Arithmetic-Intensity-Guided ABFT
//!
//! A from-scratch Rust reproduction of *"Arithmetic-Intensity-Guided
//! Fault Tolerance for Neural Network Inference on GPUs"* (Kosaian &
//! Rashmi, SC '21). The paper's CUDA/CUTLASS system is rebuilt on a
//! simulated GPU substrate: a functional hierarchical-GEMM engine with
//! Tensor-Core MMA semantics plus a calibrated analytical timing model.
//!
//! The public API is organized in three layers (see `ARCHITECTURE.md`):
//!
//! 1. **Scheme kernels** — every redundancy scheme (global ABFT,
//!    one-/two-sided thread-level ABFT, the two replication variants,
//!    the multi-checksum extension) implements
//!    [`core::SchemeKernel`], which unifies its analytical cost profile
//!    and its functional protected execution. Kernels live in a
//!    [`core::SchemeRegistry`]; new schemes plug in by registering.
//! 2. **Planning** — [`core::Planner`] is the builder-style front-end
//!    for intensity-guided ABFT (§5.3): per-layer selection among the
//!    candidate schemes by profiled execution time (or the §7.2
//!    analytical rule).
//! 3. **Serving** — [`core::Session`] dispatches requests to batch
//!    buckets, caches plans and bound pipelines per
//!    `(model, device, bucket)`, and aggregates detection statistics —
//!    the §7.3 multi-input-size deployment as a first-class API.
//!    [`core::Server`] is the concurrent front door above it: worker
//!    threads, a bounded admission queue, and a dynamic batcher that
//!    coalesces concurrent clients' requests into those same buckets.
//!
//! ## Quickstart
//!
//! Protect a single matrix multiplication and watch an injected soft
//! error get caught:
//!
//! ```
//! use aiga::prelude::*;
//!
//! let shape = GemmShape::new(64, 64, 64);
//! let gemm = ProtectedGemm::random(shape, Scheme::ThreadLevelOneSided, 7);
//! assert!(gemm.run().verdict.is_clean());
//!
//! let fault = FaultPlan { row: 3, col: 5, after_step: 10, kind: FaultKind::AddValue(50.0) };
//! assert!(gemm.with_fault(fault).run().verdict.is_detected());
//! ```
//!
//! Plan a model and serve requests through a session:
//!
//! ```
//! use aiga::prelude::*;
//!
//! // Plan once per device: per-layer selection between global and
//! // thread-level ABFT by modeled execution time.
//! let planner = Planner::new(DeviceSpec::t4());
//! let plan = planner.plan(&zoo::dlrm_mlp_bottom(32));
//! assert!(plan.intensity_guided_s() <= plan.fixed_scheme_s(Scheme::GlobalAbft));
//!
//! // Serve many requests: batch-bucket dispatch + plan caching.
//! let session = Session::builder(planner, "dlrm-bottom", zoo::dlrm_mlp_bottom)
//!     .buckets([8, 32])
//!     .build();
//! let reply = session.serve(&Matrix::random(5, 13, 42)).unwrap();
//! assert_eq!(reply.bucket, 8);
//! assert!(!reply.report.fault_detected());
//! ```
//!
//! Compile an *executable* zoo network — real FP16 weights, every
//! convolution executed as an implicit GEMM (the engine's panel packer
//! reads activations through an `Im2colView`/NCHW view of the producing
//! stage's buffer, so the lowered matrix never materializes),
//! pooling/ReLU/residual epilogues between stages, and independent
//! branch levels (Fire expands, residual/shortcut convs) running on
//! scoped worker threads with a byte-identical stage-order join — all
//! served through the same session front-end
//! (`Model → ModelPlan → CompiledModel`):
//!
//! ```
//! use aiga::prelude::*;
//!
//! // A trimmed executable ResNet bottleneck block from the zoo: the
//! // planner selects per-layer schemes on its REAL conv shapes.
//! let session = Session::builder_network(
//!     Planner::new(DeviceSpec::t4()),
//!     "resnet-block",
//!     |b| zoo::resnet_block_net(b, 8, 8, 7),
//! )
//! .buckets([2])
//! .build();
//!
//! // Requests are flattened NCHW rows (16 channels × 8 × 8 here).
//! let reply = session.serve(&Matrix::random(1, 16 * 8 * 8, 42)).unwrap();
//! assert_eq!(reply.report.output.len(), 10); // 10-way classifier head
//! assert!(!reply.report.fault_detected());
//! assert_eq!(reply.schemes.len(), 5); // conv1/conv2/conv3/downsample/fc
//! ```
//!
//! Stand a concurrent `Server` in front of the session for multi-client
//! traffic — bounded admission, worker threads, and a dynamic batcher
//! that coalesces concurrent requests into the planner's batch buckets
//! (byte-identically to solo serving):
//!
//! ```
//! use aiga::prelude::*;
//!
//! let session = Session::builder(Planner::new(DeviceSpec::t4()), "dlrm", zoo::dlrm_mlp_bottom)
//!     .buckets([8, 32])
//!     .build();
//! let server = Server::builder(session).workers(2).queue_capacity(64).build();
//!
//! let client = server.client(); // Clone one per submitting thread.
//! let pending = client.submit(&Matrix::random(5, 13, 42)).unwrap();
//! let reply = pending.wait().unwrap();
//! assert_eq!(reply.rows, 5);
//!
//! let stats = server.shutdown(); // drain, join, final stats
//! assert_eq!(stats.completed, 1);
//! ```
//!
//! Serve under *overload* without letting latency run away: requests
//! carry an optional SLO (deadline + priority), the queue is
//! age-tracked, and past configurable thresholds the server first
//! *degrades* pending work one rung down the `core::adapt` strength
//! ladder (cheaper protection, byte-identical output), then *sheds*
//! with an explicit `ServeError::Overloaded`. A supervisor respawns
//! any worker that panics, so one bad pass never takes the server
//! down:
//!
//! ```
//! use aiga::prelude::*;
//! use std::time::Duration;
//!
//! let session = Session::builder(Planner::new(DeviceSpec::t4()), "dlrm", zoo::dlrm_mlp_bottom)
//!     .buckets([8, 32])
//!     .build();
//! let server = Server::builder(session)
//!     .workers(2)                                   // one session shard per worker
//!     .degrade_after(Duration::from_millis(50))     // then: one scheme rung cheaper
//!     .shed_after(Duration::from_millis(200))       // then: explicit Overloaded
//!     .retry_policy(3, Duration::from_micros(200))  // bounded, jittered backoff
//!     .build();
//!
//! let client = server.client();
//! let slo = Slo { deadline: Some(Duration::from_millis(100)), priority: Priority::High };
//! let reply = client.submit_with_slo(&Matrix::random(5, 13, 42), slo).unwrap();
//! match reply.wait() {
//!     Ok(report) => assert_eq!(report.rows, 5),
//!     Err(ServeError::Overloaded { queue_age }) => {
//!         // Shed explicitly — resolve promptly, degrade gracefully.
//!         assert!(queue_age >= Duration::from_millis(100));
//!     }
//!     Err(e) => panic!("unexpected: {e}"),
//! }
//!
//! let stats = server.shutdown();
//! // Overload response is observable: degraded/shed/cancelled passes
//! // and supervisor worker restarts are all counted.
//! assert_eq!(stats.degraded + stats.shed + stats.completed, 1);
//! assert_eq!(stats.worker_restarts, 0);
//! ```
//!
//! Serve a *quantized* model: convert any zoo network to a storage
//! dtype (bf16 here; fp8-e4m3 and int8 work the same way) and the
//! whole stack follows — the planner prices the narrower format's
//! higher arithmetic intensity (which can flip layers between
//! thread-level and global ABFT), the executor carries the format's
//! codes with decoded-f32 panels feeding the same protected kernels,
//! and serving stays byte-deterministic:
//!
//! ```
//! use aiga::prelude::*;
//!
//! let session = Session::builder_network(
//!     Planner::new(DeviceSpec::t4()),
//!     "resnet-block-bf16",
//!     |b| zoo::resnet_block_net(b, 8, 8, 7).with_dtype(Dtype::Bf16),
//! )
//! .buckets([2])
//! .build();
//!
//! // Requests must arrive in the pipeline's storage dtype.
//! let input = Matrix::random_dtype(1, 16 * 8 * 8, 42, Dtype::Bf16);
//! let a = session.serve(&input).unwrap();
//! let b = session.serve(&input).unwrap();
//! assert!(!a.report.fault_detected());
//! let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
//! assert_eq!(bits(&a.report.output), bits(&b.report.output)); // byte-deterministic
//! ```
//!
//! Go from detection to *correction*: a recovery session localizes a
//! flagged fault (column / row / lane, per scheme), recomputes only the
//! implicated slice mid-pass, and re-verifies; a server can
//! transparently retry any verdict that survives; and an adaptive
//! controller escalates or relaxes per-layer schemes online as the
//! observed fault rate moves:
//!
//! ```
//! use aiga::prelude::*;
//!
//! let session = Session::builder(Planner::new(DeviceSpec::t4()), "dlrm", zoo::dlrm_mlp_bottom)
//!     .buckets([8])
//!     .recovery(true)                   // localize + recompute in place
//!     .adaptive(AdaptConfig::default()) // escalate/relax schemes online
//!     .build();
//! let server = Server::builder(session).retry_on_verdict(true).build();
//! let reply = server.client().submit(&Matrix::random(4, 13, 42)).unwrap().wait().unwrap();
//! assert!(!reply.report.fault_detected());
//!
//! let stats = server.shutdown();
//! assert_eq!(stats.retries, 0); // clean traffic: nothing to retry
//! assert_eq!(stats.session.corrections, 0);
//! ```
//!
//! The facade re-exports the workspace sub-crates: [`fp16`] (software
//! half precision and `m16n8k8` MMA semantics), [`dtype`] (the
//! f16/bf16/fp8/int8 storage formats), [`gpu`] (devices, roofline,
//! tiling, functional engine, timing), [`nn`] (layer lowering and the
//! model zoo), [`core`] (the paper's contribution), [`faults`]
//! (injection campaigns), and [`util`] (RNG/JSON/parallel helpers).

pub use aiga_core as core;
pub use aiga_dtype as dtype;
pub use aiga_faults as faults;
pub use aiga_fp16 as fp16;
pub use aiga_gpu as gpu;
pub use aiga_nn as nn;
pub use aiga_util as util;

/// One-stop imports for the common API surface.
///
/// ```
/// use aiga::prelude::*;
/// ```
pub mod prelude {
    pub use aiga_core::adapt::{AdaptConfig, AdaptiveController, Adjustment, Observation};
    pub use aiga_core::compiled::CompiledModel;
    pub use aiga_core::cost::{evaluate_layer, SchemeTiming};
    pub use aiga_core::kernel::{
        BoundKernel, FaultSite, MultiChecksumKernel, RunReport, SchemeKernel, Verdict,
    };
    pub use aiga_core::pipeline::{
        InferenceReport, LayerCorrection, LayerDetection, PipelineFault, ProtectedPipeline,
    };
    pub use aiga_core::planner::Planner;
    pub use aiga_core::protected::{ProtectedConv, ProtectedGemm};
    pub use aiga_core::registry::SchemeRegistry;
    pub use aiga_core::schemes::Scheme;
    pub use aiga_core::selector::{DeploymentPlan, LayerPlan, ModelPlan, SelectionMode};
    pub use aiga_core::serve::{
        Client, Pending, Priority, ServeError, Server, ServerBuilder, ServerStats, Slo,
    };
    pub use aiga_core::session::{PlanCache, ServeReport, Session, SessionError, SessionStats};
    pub use aiga_faults::{Campaign, CampaignStats, FaultModel, Outcome, Trial};
    pub use aiga_gpu::engine::{
        Dtype, FaultKind, FaultPlan, GemmEngine, Matrix, NoScheme, Workspace,
    };
    pub use aiga_gpu::timing::Calibration;
    pub use aiga_gpu::{Bound, DeviceSpec, GemmShape, Roofline, TilingConfig};
    pub use aiga_nn::{
        im2col, im2col_into, zoo, ConvParams, LinearLayer, Model, Network, NetworkBuilder, Tensor,
    };
}
