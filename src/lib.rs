//! # aiga — Arithmetic-Intensity-Guided ABFT
//!
//! A from-scratch Rust reproduction of *"Arithmetic-Intensity-Guided Fault
//! Tolerance for Neural Network Inference on GPUs"* (Kosaian & Rashmi,
//! SC '21). The paper's CUDA/CUTLASS system is rebuilt on a simulated GPU
//! substrate: a functional hierarchical-GEMM engine with Tensor-Core MMA
//! semantics plus a calibrated analytical timing model.
//!
//! This facade crate re-exports the workspace sub-crates:
//!
//! - [`fp16`] — software half-precision arithmetic and `m16n8k8` MMA
//!   semantics (FP16 inputs, FP32 accumulation).
//! - [`gpu`] — device specifications (T4, P4, V100, A100, Jetson AGX
//!   Xavier), roofline/CMR analysis, hierarchical tiling, the functional
//!   GEMM engine, occupancy and kernel timing models.
//! - [`nn`] — layer descriptors, conv→implicit-GEMM lowering, arithmetic
//!   intensity, and the model zoo of all fourteen evaluated networks.
//! - [`core`] — the paper's contribution: global ABFT, thread-level
//!   one-/two-sided ABFT, thread-level replication, and the
//!   intensity-guided per-layer selector plus the protected inference
//!   pipeline.
//! - [`faults`] — soft-error fault models, injection campaigns, and
//!   detection-coverage statistics.
//!
//! ## Quickstart
//!
//! ```
//! use aiga::core::{ProtectedGemm, Scheme};
//! use aiga::gpu::GemmShape;
//!
//! // Protect a small matrix multiplication with one-sided thread-level
//! // ABFT and verify that it detects an injected fault.
//! let shape = GemmShape::new(64, 64, 64);
//! let gemm = ProtectedGemm::random(shape, Scheme::ThreadLevelOneSided, 7);
//! let clean = gemm.run();
//! assert!(clean.verdict.is_clean());
//! ```
pub use aiga_core as core;
pub use aiga_faults as faults;
pub use aiga_fp16 as fp16;
pub use aiga_gpu as gpu;
pub use aiga_nn as nn;
