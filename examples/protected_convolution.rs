//! Protecting a convolution end to end: im2col lowering, Tensor Core
//! GEMM on the simulated kernel, and fault detection in feature-map
//! coordinates.
//!
//! ```sh
//! cargo run --release --example protected_convolution
//! ```

use aiga::prelude::*;

fn main() {
    // A 3x3, stride-1 convolution over a 32x32 RGB region — the shape of
    // an early specialized-CNN layer.
    let input = Tensor::random(1, 3, 32, 32, 11);
    let filters = Tensor::random(16, 3, 3, 3, 12);
    let params = ConvParams {
        c_out: 16,
        kernel: 3,
        stride: 1,
        padding: 1,
    };

    let conv = ProtectedConv::new(&input, &filters, params, Scheme::ThreadLevelOneSided);
    let clean = conv.run();
    let (ho, wo) = conv.out_dims();
    println!(
        "conv 3->16, 3x3/s1/p1 over 32x32: output {ho}x{wo}, lowered GEMM \
         M={} N=16 K=27, verdict {:?}",
        ho * wo,
        clean.verdict
    );
    assert!(clean.verdict.is_clean());
    println!(
        "activation (0, 5, 10, 10) = {:.3}",
        conv.output_at(&clean, 0, 5, 10, 10)
    );

    // A soft error striking the accumulator of output pixel (channel 5,
    // y=10, x=10) mid-kernel is caught by the thread-local check.
    let faulty = ProtectedConv::new(&input, &filters, params, Scheme::ThreadLevelOneSided)
        .with_fault_at(0, 5, 10, 10, 4, FaultKind::BitFlip(29))
        .run();
    println!("after injected bit flip: verdict {:?}", faulty.verdict);
    assert!(faulty.verdict.is_detected());
}
