//! Fault-injection campaign: measure each scheme's detection coverage
//! under random FP32 bit flips (the §2.3 soft-error model).
//!
//! ```sh
//! cargo run --release --example fault_campaign -- 500
//! ```

use aiga::prelude::*;

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(300);
    let shape = GemmShape::new(64, 64, 64);
    println!("{trials} random bit flips per scheme on a {shape} GEMM\n");
    println!(
        "{:<42} {:>9} {:>6} {:>7} {:>7} {:>10} {:>11}",
        "scheme", "detected", "SDC", "masked", "false+", "det. rate", "worst SDC"
    );
    for scheme in Scheme::all_protected() {
        let campaign = Campaign::new(shape, scheme, 42 + scheme.ordinal());
        let s = campaign.run_bit_flips(trials, 7);
        println!(
            "{:<42} {:>9} {:>6} {:>7} {:>7} {:>9.1}% {:>11.2e}",
            scheme.label(),
            s.detected,
            s.sdc,
            s.masked,
            s.false_positives,
            s.detection_rate() * 100.0,
            s.worst_sdc
        );
    }
    println!(
        "\nnotes: tolerance-based ABFT cannot see corruptions below its rounding\n\
         threshold (they are bounded and benign); traditional replication\n\
         compares bit-exactly and catches everything, at the §4 occupancy cost."
    );

    // Per-bit vulnerability sweep for one-sided thread-level ABFT.
    println!("\nper-bit detection profile, one-sided thread-level ABFT (20 flips/bit):");
    let campaign = Campaign::new(shape, Scheme::ThreadLevelOneSided, 77);
    for (bit, s) in campaign.bit_sweep(20, 11) {
        let bar = "#".repeat((s.detection_rate() * 30.0) as usize);
        println!(
            "  bit {bit:>2}: detected {:>2}, SDC {:>2}, masked {:>2}  |{bar}",
            s.detected, s.sdc, s.masked
        );
    }
}
