//! DLRM recommendation serving under intensity-guided ABFT (§6.4.2 +
//! §7.3) — now through the concurrent `aiga::serve` front door.
//!
//! Plans Facebook-DLRM's MLPs with the builder-style `Planner`, prints
//! the per-layer choices and the overhead comparison against fixed
//! global ABFT, then stands up a `Server` — worker threads, bounded
//! admission, dynamic batching into the planner's buckets — and hits it
//! from several concurrent client threads with mixed-size requests,
//! finishing with an injected soft error and a statistics summary
//! (throughput counters, coalescing high-water marks, p50/p95/p99
//! end-to-end latency).
//!
//! ```sh
//! cargo run --release --example dlrm_serving
//! ```

use aiga::prelude::*;
use std::time::Duration;

fn main() {
    let planner = Planner::new(DeviceSpec::t4());

    // Pre-deployment planning: the per-layer selection flips with batch
    // size because arithmetic intensity does (§7.3).
    for batch in [1u64, 2048] {
        for model in [zoo::dlrm_mlp_bottom(batch), zoo::dlrm_mlp_top(batch)] {
            let plan = planner.plan(&model);
            println!(
                "{} @batch {batch} (aggregate AI {:.1}):",
                model.name,
                model.aggregate_intensity()
            );
            for l in &plan.layers {
                println!(
                    "  {:8} {:>16}  AI {:>6.1}  -> {}",
                    l.name,
                    l.shape.to_string(),
                    l.intensity,
                    l.chosen.label()
                );
            }
            println!(
                "  overhead: global {:.2}% | intensity-guided {:.2}% ({:.2}x reduction)\n",
                plan.fixed_scheme_overhead_pct(Scheme::GlobalAbft),
                plan.intensity_guided_overhead_pct(),
                plan.fixed_scheme_overhead_pct(Scheme::GlobalAbft)
                    / plan.intensity_guided_overhead_pct().max(1e-9)
            );
        }
    }

    // The storage dtype is a planner axis too: fewer bytes per element
    // raise every layer's arithmetic intensity, so the same model can
    // cross the compute-bound threshold and flip layers from
    // thread-level schemes to global ABFT. Print the scheme table the
    // planner chooses at each precision.
    {
        let model = zoo::dlrm_mlp_top(512);
        let dtypes = [Dtype::F16, Dtype::Bf16, Dtype::Fp8E4M3, Dtype::Int8];
        let plans: Vec<_> = dtypes
            .iter()
            .map(|&d| Planner::new(DeviceSpec::t4()).dtype(d).plan(&model))
            .collect();
        println!(
            "{} @batch 512, scheme choice per storage dtype:",
            model.name
        );
        print!("  {:8} {:>16}", "layer", "shape");
        for d in &dtypes {
            print!("  {:>22}", d.to_string());
        }
        println!();
        for i in 0..plans[0].layers.len() {
            print!(
                "  {:8} {:>16}",
                plans[0].layers[i].name,
                plans[0].layers[i].shape.to_string()
            );
            for plan in &plans {
                let l = &plan.layers[i];
                print!("  {:>13} (AI {:>5.0})", l.chosen.label(), l.intensity);
            }
            println!();
        }
        println!();
    }

    // Serving: one session (three batch buckets, lazily planned), one
    // concurrent server in front of it. The coalesce window lets the
    // dynamic batcher merge requests that arrive close together into a
    // single padded bucket pass.
    let session = Session::builder(planner, "dlrm-mlp-bottom", zoo::dlrm_mlp_bottom)
        .buckets([8, 32, 128])
        .seed(99)
        .build();
    let server = Server::builder(session)
        .workers(2)
        .queue_capacity(128)
        .coalesce_window(Duration::from_micros(300))
        .build();

    // Four concurrent clients, each streaming mixed-batch requests.
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 6;
    let sizes = [3usize, 8, 20, 32, 100, 7];
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let client = server.client();
            scope.spawn(move || {
                for (i, &rows) in sizes.iter().enumerate().take(PER_CLIENT) {
                    let request = Matrix::random(rows, 13, 2024 + (c * PER_CLIENT + i) as u64);
                    let reply = client.submit(&request).expect("server is up");
                    let reply = reply.wait().expect("within declared buckets");
                    assert_eq!(reply.report.output.len(), rows * 64);
                    assert!(!reply.report.fault_detected());
                    println!(
                        "client {c} request {i}: batch {rows:>3} -> bucket {:>3}, \
                         schemes [{}], detections {}",
                        reply.bucket,
                        reply
                            .schemes
                            .iter()
                            .map(|s| s.to_string())
                            .collect::<Vec<_>>()
                            .join(", "),
                        reply.report.detections.len()
                    );
                }
            });
        }
    });

    // A soft error strikes one request. Faulted requests are never
    // coalesced (the fault addresses one kernel launch), and the
    // per-layer plan catches the flip.
    let faulty = server
        .client()
        .submit_with_fault(
            &Matrix::random(32, 13, 7777),
            Some(PipelineFault {
                layer: 1,
                fault: FaultPlan {
                    row: 5,
                    col: 77,
                    after_step: 10,
                    kind: FaultKind::AddValue(12.0),
                },
            }),
        )
        .unwrap()
        .wait()
        .unwrap();
    assert!(faulty.report.fault_detected());
    let d = &faulty.report.detections[0];
    println!(
        "\nfault in layer 1 caught by {} at layer {} ({}), residual {:.3}",
        d.scheme.label(),
        d.layer,
        d.name,
        d.residual
    );

    // Graceful shutdown: drain, join, final statistics.
    let stats = server.shutdown();
    println!(
        "\nserver stats: {} submitted, {} completed, {} failed, {} rejected",
        stats.submitted, stats.completed, stats.failed, stats.rejected
    );
    println!(
        "  batching: {} passes for {} requests ({} coalesced; largest pass {} requests / {} rows)",
        stats.batches,
        stats.completed,
        stats.coalesced_requests,
        stats.max_batch_requests,
        stats.max_batch_rows
    );
    println!(
        "  queue: depth high-water {} (capacity 128)",
        stats.max_queue_depth
    );
    println!(
        "  latency: p50 {:.2} ms | p95 {:.2} ms | p99 {:.2} ms (log2-bin interpolated)",
        stats.p50_latency_ns as f64 / 1e6,
        stats.p95_latency_ns as f64 / 1e6,
        stats.p99_latency_ns as f64 / 1e6
    );
    println!(
        "  session underneath: {} serves, {} plan builds, {} cache hits, {} split, {} faulty",
        stats.session.requests,
        stats.session.plan_builds,
        stats.session.cache_hits,
        stats.session.split_requests,
        stats.session.faulty_requests
    );
    println!(
        "  recovery: {} retries, {} corrections ({} by vote), {} adaptations",
        stats.retries,
        stats.session.corrections,
        stats.session.vote_resolutions,
        stats.session.adaptations
    );
    println!(
        "  overload: {} degraded, {} shed, {} cancelled, {} worker restarts",
        stats.degraded, stats.shed, stats.cancelled, stats.worker_restarts
    );
    assert_eq!(stats.completed, (CLIENTS * PER_CLIENT) as u64 + 1);
    // One build per *touched* bucket: 32 and 128 are always hit, but
    // whether any pass lands in bucket 8 depends on how the batcher
    // coalesced the small requests.
    assert!((2..=3).contains(&stats.session.plan_builds));
    assert_eq!(stats.retries, 0, "retry was not enabled on this server");

    // Transparent retry: the same soft error against a server built
    // with `retry_on_verdict(true)`. The first pass flags the fault,
    // the worker re-runs the request solo (transients don't recur),
    // and the handle resolves with the clean re-execution — the caller
    // never sees the tainted output.
    let fault = PipelineFault {
        layer: 1,
        fault: FaultPlan {
            row: 5,
            col: 77,
            after_step: 10,
            kind: FaultKind::AddValue(12.0),
        },
    };
    let retrying = Session::builder(
        Planner::new(DeviceSpec::t4()),
        "dlrm-mlp-bottom",
        zoo::dlrm_mlp_bottom,
    )
    .buckets([32])
    .seed(99)
    .build();
    let server = Server::builder(retrying)
        .workers(1)
        .retry_on_verdict(true)
        .build();
    let request = Matrix::random(32, 13, 7777);
    let reply = server
        .client()
        .submit_with_fault(&request, Some(fault))
        .unwrap()
        .wait()
        .unwrap();
    assert!(!reply.report.fault_detected(), "retry hid the fault");
    let stats = server.shutdown();
    assert_eq!(stats.retries, 1);
    println!(
        "\nretry server: {} retry (retry p50 {:.2} ms) -> clean reply",
        stats.retries,
        stats.retry_p50_latency_ns as f64 / 1e6
    );

    // In-place correction: a *recovery* session goes one step further —
    // the scheme localizes the fault (lane / column / row), recomputes
    // only the implicated slice mid-pass, and re-verifies. No retry
    // pass needed; the output is byte-equal to a clean run.
    let recovering = Session::builder(
        Planner::new(DeviceSpec::t4()),
        "dlrm-mlp-bottom",
        zoo::dlrm_mlp_bottom,
    )
    .buckets([32])
    .seed(99)
    .recovery(true)
    .build();
    let repaired = recovering.serve_with_fault(&request, Some(fault)).unwrap();
    assert!(!repaired.report.fault_detected());
    assert!(repaired.report.fault_corrected());
    let clean = recovering.serve(&request).unwrap();
    assert_eq!(
        repaired.report.output, clean.report.output,
        "repair must be byte-equal"
    );
    let sstats = recovering.stats();
    let c = &repaired.report.corrections[0];
    println!(
        "recovery session: {} corrected in place at layer {} ({:?}) — {} corrections, {} by vote",
        c.scheme.label(),
        c.layer,
        c.site,
        sstats.corrections,
        sstats.vote_resolutions
    );
}
