//! DLRM recommendation serving under intensity-guided ABFT (§6.4.2 +
//! §7.3).
//!
//! Plans Facebook-DLRM's MLPs with the builder-style `Planner`, prints
//! the per-layer choices and the overhead comparison against fixed
//! global ABFT, then stands up a `Session` — the multi-input-size
//! serving front-end — and pushes a stream of mixed-batch requests
//! through it, including one with an injected soft error.
//!
//! ```sh
//! cargo run --release --example dlrm_serving
//! ```

use aiga::prelude::*;

fn main() {
    let planner = Planner::new(DeviceSpec::t4());

    // Pre-deployment planning: the per-layer selection flips with batch
    // size because arithmetic intensity does (§7.3).
    for batch in [1u64, 2048] {
        for model in [zoo::dlrm_mlp_bottom(batch), zoo::dlrm_mlp_top(batch)] {
            let plan = planner.plan(&model);
            println!(
                "{} @batch {batch} (aggregate AI {:.1}):",
                model.name,
                model.aggregate_intensity()
            );
            for l in &plan.layers {
                println!(
                    "  {:8} {:>16}  AI {:>6.1}  -> {}",
                    l.name,
                    l.shape.to_string(),
                    l.intensity,
                    l.chosen.label()
                );
            }
            println!(
                "  overhead: global {:.2}% | intensity-guided {:.2}% ({:.2}x reduction)\n",
                plan.fixed_scheme_overhead_pct(Scheme::GlobalAbft),
                plan.intensity_guided_overhead_pct(),
                plan.fixed_scheme_overhead_pct(Scheme::GlobalAbft)
                    / plan.intensity_guided_overhead_pct().max(1e-9)
            );
        }
    }

    // Serving: one session, three batch buckets, mixed request sizes.
    // Plans and bound pipelines (incl. global ABFT's offline weight
    // checksums) are built lazily on first use of each bucket and cached.
    let session = Session::builder(planner, "dlrm-mlp-bottom", zoo::dlrm_mlp_bottom)
        .buckets([8, 32, 128])
        .seed(99)
        .build();

    for (i, rows) in [3usize, 8, 20, 32, 100, 7].into_iter().enumerate() {
        let request = Matrix::random(rows, 13, 2024 + i as u64);
        let reply = session.serve(&request).expect("within declared buckets");
        println!(
            "request {i}: batch {rows:>3} -> bucket {:>3}, schemes [{}], detections {}",
            reply.bucket,
            reply
                .schemes
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            reply.report.detections.len()
        );
        assert!(!reply.report.fault_detected());
        assert_eq!(reply.report.output.len(), rows * 64);
    }

    // A soft error strikes one request; the per-layer plan catches it.
    let faulty = session
        .serve_with_fault(
            &Matrix::random(32, 13, 7777),
            Some(PipelineFault {
                layer: 1,
                fault: FaultPlan {
                    row: 5,
                    col: 77,
                    after_step: 10,
                    kind: FaultKind::AddValue(12.0),
                },
            }),
        )
        .unwrap();
    assert!(faulty.report.fault_detected());
    let d = &faulty.report.detections[0];
    println!(
        "\nfault in layer 1 caught by {} at layer {} ({}), residual {:.3}",
        d.scheme.label(),
        d.layer,
        d.name,
        d.residual
    );

    let stats = session.stats();
    println!(
        "session stats: {} requests, {} plan builds, {} cache hits, {} faulty",
        stats.requests, stats.plan_builds, stats.cache_hits, stats.faulty_requests
    );
    assert_eq!(stats.plan_builds, 3); // one per touched bucket
}
