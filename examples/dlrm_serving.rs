//! DLRM recommendation serving under intensity-guided ABFT (§6.4.2).
//!
//! Plans Facebook-DLRM's two MLPs with intensity-guided ABFT, prints the
//! per-layer choices and the overhead comparison against fixed global
//! ABFT, then runs a protected end-to-end inference with a fault
//! injected into the middle layer.
//!
//! ```sh
//! cargo run --release --example dlrm_serving
//! ```

use aiga::core::pipeline::{PipelineFault, ProtectedPipeline};
use aiga::core::{ModelPlan, Scheme};
use aiga::gpu::engine::{FaultKind, FaultPlan, Matrix};
use aiga::gpu::timing::Calibration;
use aiga::gpu::DeviceSpec;
use aiga::nn::zoo;

fn main() {
    let device = DeviceSpec::t4();
    let calib = Calibration::default();

    for batch in [1u64, 2048] {
        for model in [zoo::dlrm_mlp_bottom(batch), zoo::dlrm_mlp_top(batch)] {
            let plan = ModelPlan::build(&model, &device, &calib);
            println!(
                "{} @batch {batch} (aggregate AI {:.1}):",
                model.name,
                model.aggregate_intensity()
            );
            for l in &plan.layers {
                println!(
                    "  {:8} {:>16}  AI {:>6.1}  -> {}",
                    l.name,
                    l.shape.to_string(),
                    l.intensity,
                    l.chosen.label()
                );
            }
            println!(
                "  overhead: global {:.2}% | intensity-guided {:.2}% ({:.2}x reduction)\n",
                plan.fixed_scheme_overhead_pct(Scheme::GlobalAbft),
                plan.intensity_guided_overhead_pct(),
                plan.fixed_scheme_overhead_pct(Scheme::GlobalAbft)
                    / plan.intensity_guided_overhead_pct().max(1e-9)
            );
        }
    }

    // Functional end-to-end: serve a batch of 32 requests with the
    // per-layer plan, then corrupt one accumulator in layer 1.
    let model = zoo::dlrm_mlp_bottom(32);
    let plan = ModelPlan::build(&model, &device, &calib);
    let schemes: Vec<Scheme> = plan.layers.iter().map(|l| l.chosen).collect();
    let pipeline = ProtectedPipeline::new(&model, &schemes, 99);
    let requests = Matrix::random(32, 13, 2024);

    let clean = pipeline.infer(&requests, None);
    println!(
        "clean inference: {} outputs, detections: {}",
        clean.output.len(),
        clean.detections.len()
    );
    assert!(!clean.fault_detected());

    let report = pipeline.infer(
        &requests,
        Some(PipelineFault {
            layer: 1,
            fault: FaultPlan {
                row: 5,
                col: 77,
                after_step: 10,
                kind: FaultKind::AddValue(12.0),
            },
        }),
    );
    assert!(report.fault_detected());
    let d = &report.detections[0];
    println!(
        "fault in layer 1 caught by {} at layer {} ({}), residual {:.3}",
        d.scheme.label(),
        d.layer,
        d.name,
        d.residual
    );
}
