//! Roofline explorer: how the choice between global and thread-level
//! ABFT shifts across GPUs (§3.3, §7.1).
//!
//! Sweeps square GEMMs on every modeled device and prints which scheme
//! intensity-guided ABFT would pick — the crossover tracks each device's
//! CMR, demonstrating that the adaptation is device-specific, not a
//! fixed size threshold.
//!
//! ```sh
//! cargo run --release --example roofline_explorer
//! ```

use aiga::prelude::*;

fn main() {
    let calib = Calibration::default();
    let sizes: Vec<u64> = vec![32, 64, 128, 256, 512, 1024, 2048, 4096];

    print!("{:<34} {:>7}", "device (CMR)", "");
    for s in &sizes {
        print!("{s:>7}");
    }
    println!();
    println!("{:-<34}{:->7}{}", "", "", "-".repeat(7 * sizes.len()));

    for device in DeviceSpec::all() {
        print!(
            "{:<34} {:>7}",
            format!("{} ({:.0})", device.name, device.cmr()),
            ""
        );
        for &s in &sizes {
            let shape = GemmShape::square(s);
            let (_, ts) = evaluate_layer(
                shape,
                &Scheme::intensity_guided_candidates(),
                &device,
                &calib,
            );
            let winner = ts
                .iter()
                .min_by(|a, b| a.estimate.total_s.total_cmp(&b.estimate.total_s))
                .unwrap();
            let tag = match winner.scheme {
                Scheme::ThreadLevelOneSided => "thread",
                Scheme::GlobalAbft => "global",
                _ => "?",
            };
            print!("{tag:>7}");
        }
        println!();
    }
    println!(
        "\nreading: 'thread' = thread-level one-sided ABFT wins, 'global' = global ABFT wins.\n\
         The thread->global crossover climbs with the device's CMR (Eq. 1)."
    );
}
