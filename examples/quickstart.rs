//! Quickstart: protect a matrix multiplication with ABFT, inject a soft
//! error, and watch it get caught.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use aiga::prelude::*;

fn main() {
    // A bandwidth-bound layer-sized GEMM (arithmetic intensity well
    // below the T4's CMR of 203).
    let shape = GemmShape::new(128, 64, 256);
    let roofline = Roofline::new(DeviceSpec::t4());
    println!(
        "shape {shape}: arithmetic intensity {:.1}, {:?} bound on a {}",
        shape.arithmetic_intensity_fp16(),
        roofline.classify(shape),
        roofline.device().name,
    );

    // 1. Clean run under one-sided thread-level ABFT: no detection.
    let gemm = ProtectedGemm::random(shape, Scheme::ThreadLevelOneSided, 7);
    let clean = gemm.run();
    assert!(clean.verdict.is_clean());
    println!("clean run: verdict = {:?}", clean.verdict);

    // 2. Corrupt one FP32 accumulator mid-kernel (a wrong partial
    //    product, the §2.3 single-fault model) — the thread-local
    //    checksum check trips. Random *bit-flip* campaigns, including
    //    the sub-threshold flips no tolerance-based checker can see,
    //    live in `examples/fault_campaign.rs`.
    let fault = FaultPlan {
        row: 17,
        col: 42,
        after_step: 31,
        kind: FaultKind::AddValue(25.0),
    };
    let faulty = ProtectedGemm::random(shape, Scheme::ThreadLevelOneSided, 7)
        .with_fault(fault)
        .run();
    match faulty.verdict {
        Verdict::Detected {
            residual,
            threshold,
        } => println!(
            "injected bit flip detected: residual {residual:.3} > threshold {threshold:.3}"
        ),
        Verdict::Corrected { site, .. } => {
            unreachable!("plain run() detects only; correction localized {site:?}")
        }
        Verdict::Clean => unreachable!("the fault must be detected"),
    }

    // 3. The same fault under global ABFT is caught by the kernel-level
    //    checksum comparison instead. Schemes are interchangeable ids —
    //    dispatch happens through the scheme registry.
    let global = ProtectedGemm::random(shape, Scheme::GlobalAbft, 7)
        .with_fault(fault)
        .run();
    println!("global ABFT verdict: {:?}", global.verdict);
    assert!(global.verdict.is_detected());

    // 4. Detection is only half the story: the corrected run localizes
    //    the fault (here: the column the kernel-level checksum
    //    implicates), recomputes just that slice, and re-verifies —
    //    the output is byte-equal to the clean run.
    let mut ws = Workspace::new();
    let gemm = ProtectedGemm::random(shape, Scheme::GlobalAbft, 7);
    let verdict = gemm.run_corrected_into(&[fault], &mut ws);
    match verdict {
        Verdict::Corrected { site, .. } => {
            println!("corrected in place: localized to {site:?}");
        }
        other => unreachable!("global ABFT localizes columns: {other:?}"),
    }
    let clean_global = gemm.run_with(&[]);
    assert_eq!(ws.output().c, clean_global.output.c, "byte-equal repair");
    println!("repaired output is byte-equal to the clean run");
}
