//! Protecting NoScope-style specialized video-analytics CNNs (§6.4.3).
//!
//! These small binary classifiers run in front of a heavyweight CNN at
//! batch 64 and are heavily bandwidth bound, which is exactly where
//! thread-level ABFT shines. The example plans each specialized CNN with
//! the builder-style `Planner`, shows the per-layer roofline
//! classification, and compares the three protection strategies.
//!
//! ```sh
//! cargo run --release --example video_analytics
//! ```

use aiga::prelude::*;

fn main() {
    let planner = Planner::new(DeviceSpec::t4());
    let roofline = Roofline::new(planner.device().clone());
    println!(
        "device: {} (FP16 CMR {:.0})\n",
        planner.device().name,
        planner.device().cmr()
    );

    for model in zoo::specialized_cnns(64) {
        let plan = planner.plan(&model);
        println!(
            "{} — aggregate AI {:.1}, {} layers:",
            model.name,
            model.aggregate_intensity(),
            model.layers.len()
        );
        for l in &plan.layers {
            println!(
                "  {:7} {:>18}  AI {:>6.1}  [{:?} bound]  -> {}",
                l.name,
                l.shape.to_string(),
                l.intensity,
                roofline.classify_intensity(l.intensity),
                l.chosen.label()
            );
        }
        let thread = plan.fixed_scheme_overhead_pct(Scheme::ThreadLevelOneSided);
        let global = plan.fixed_scheme_overhead_pct(Scheme::GlobalAbft);
        let guided = plan.intensity_guided_overhead_pct();
        println!(
            "  overheads: thread-level {thread:.2}% | global {global:.2}% | \
             intensity-guided {guided:.2}%\n"
        );
        assert!(guided <= thread.min(global) + 1e-12);
    }
}
